//! Streams, events and a discrete-event execution timeline.
//!
//! Models the host-side submission behaviour the paper's Task-Graph work
//! targets (§III-F): every stream launch pays
//! [`DeviceProps::kernel_launch_overhead_us`] on the host; kernels on the
//! same stream serialize; kernels on different streams overlap subject to
//! device-wide SM capacity; idle gaps appear whenever a stream waits on a
//! dependency or the host is still launching.

use crate::device::DeviceProps;

/// Identifier of a stream within a [`Timeline`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub usize);

/// One scheduled kernel execution.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduledKernel {
    /// Kernel name.
    pub name: String,
    /// Stream it ran on.
    pub stream: StreamId,
    /// Host submission time (µs).
    pub submit_us: f64,
    /// Device start time (µs).
    pub start_us: f64,
    /// Device end time (µs).
    pub end_us: f64,
}

/// How a kernel launch is paid for on the host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaunchMode {
    /// Individual stream launches: host overhead per kernel.
    Stream,
    /// Replay of a pre-instantiated task graph: one host overhead for the
    /// whole batch, near-zero per node.
    Graph,
}

/// Discrete-event device timeline.
///
/// Capacity model: the device executes kernels concurrently as long as the
/// sum of their SM demands fits `sm_count`; a kernel's SM demand is
/// supplied by the caller (grid blocks capped by device SMs).
#[derive(Clone, Debug)]
pub struct Timeline {
    device: DeviceProps,
    host_cursor_us: f64,
    stream_ready_us: Vec<f64>,
    executed: Vec<ScheduledKernel>,
    /// SM-usage step function: (time, ±sms) events sorted by (time, delta)
    /// so releases apply before acquisitions at equal instants.
    events: Vec<(f64, i64)>,
    launch_count: u64,
    launch_overhead_total_us: f64,
    dispatch_idle_total_us: f64,
}

impl Timeline {
    /// New empty timeline on `device`.
    pub fn new(device: DeviceProps) -> Self {
        Self {
            device,
            host_cursor_us: 0.0,
            stream_ready_us: Vec::new(),
            executed: Vec::new(),
            events: Vec::new(),
            launch_count: 0,
            launch_overhead_total_us: 0.0,
            dispatch_idle_total_us: 0.0,
        }
    }

    /// Creates (or returns) stream `i`.
    pub fn stream(&mut self, i: usize) -> StreamId {
        while self.stream_ready_us.len() <= i {
            self.stream_ready_us.push(0.0);
        }
        StreamId(i)
    }

    /// Earliest start `t ≥ ready` such that `sms` SMs are free throughout
    /// `[t, t + dur)`, against every reservation placed so far (including
    /// ones that start in the future — launches are placed in submission
    /// order but their ready times are not monotone across streams).
    fn find_start(&self, ready: f64, dur: f64, sms: u32) -> f64 {
        let cap = self.device.sm_count as i64;
        let need = sms as i64;

        let mut usage: i64 = 0;
        for &(t, delta) in &self.events {
            if t <= ready {
                usage += delta;
            } else {
                break;
            }
        }

        let mut candidate = if usage + need <= cap {
            Some(ready)
        } else {
            None
        };
        for &(t, delta) in self.events.iter().filter(|&&(t, _)| t > ready) {
            if let Some(c) = candidate {
                if t >= c + dur {
                    return c;
                }
            }
            usage += delta;
            if usage + need > cap {
                candidate = None;
            } else if candidate.is_none() {
                candidate = Some(t);
            }
        }
        candidate.unwrap_or_else(|| {
            self.events
                .last()
                .map(|&(t, _)| t)
                .unwrap_or(ready)
                .max(ready)
        })
    }

    fn reserve(&mut self, start: f64, end: f64, sms: u32) {
        let insert = |events: &mut Vec<(f64, i64)>, ev: (f64, i64)| {
            let pos = events.partition_point(|&(t, d)| (t, d) < (ev.0, ev.1));
            events.insert(pos, ev);
        };
        insert(&mut self.events, (start, sms as i64));
        insert(&mut self.events, (end, -(sms as i64)));
    }

    /// Submits a kernel of `duration_us` occupying `sms_demand` SMs on
    /// `stream`, optionally waiting for `deps` (end times of earlier
    /// submissions).
    ///
    /// Returns the completion time.
    pub fn launch(
        &mut self,
        name: impl Into<String>,
        stream: StreamId,
        duration_us: f64,
        sms_demand: u32,
        mode: LaunchMode,
        deps: &[f64],
    ) -> f64 {
        let (overhead, dispatch_gap) = match mode {
            // Stream launches pay host overhead plus a device-side
            // dispatch gap before the kernel starts (the per-kernel idle
            // the paper's Table II reports and CUDA Graph eliminates).
            LaunchMode::Stream => (self.device.kernel_launch_overhead_us, 1.0),
            LaunchMode::Graph => (0.02, 0.05),
        };
        let sms = sms_demand.clamp(1, self.device.sm_count);

        // Host submits sequentially.
        let submit = self.host_cursor_us;
        self.host_cursor_us += overhead;
        self.launch_count += 1;
        self.launch_overhead_total_us += overhead;

        // Device-side readiness: stream order + explicit deps + submission.
        let dep_ready = deps.iter().copied().fold(0.0f64, f64::max);
        let ready = self.stream_ready_us[stream.0]
            .max(dep_ready)
            .max(submit + overhead);

        let start = self.find_start(ready + dispatch_gap, duration_us, sms);
        self.dispatch_idle_total_us += dispatch_gap;
        let end = start + duration_us;
        self.reserve(start, end, sms);
        self.stream_ready_us[stream.0] = end;

        self.executed.push(ScheduledKernel {
            name: name.into(),
            stream,
            submit_us: submit,
            start_us: start,
            end_us: end,
        });
        end
    }

    /// Advances the host cursor (e.g. for a one-off graph launch fee).
    pub fn host_pay(&mut self, us: f64) {
        self.host_cursor_us += us;
        self.launch_overhead_total_us += us;
    }

    /// Time when everything submitted has finished.
    pub fn makespan_us(&self) -> f64 {
        self.executed
            .iter()
            .map(|k| k.end_us)
            .fold(self.host_cursor_us, f64::max)
    }

    /// Total device idle time summed over gaps where *nothing* executed
    /// between the first start and the makespan.
    pub fn idle_us(&self) -> f64 {
        if self.executed.is_empty() {
            return 0.0;
        }
        let mut spans: Vec<(f64, f64)> = self
            .executed
            .iter()
            .map(|k| (k.start_us, k.end_us))
            .collect();
        spans.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let mut idle = 0.0;
        let mut cover_end = spans[0].0;
        for (s, e) in spans {
            if s > cover_end {
                idle += s - cover_end;
            }
            cover_end = cover_end.max(e);
        }
        idle
    }

    /// Kernels executed, in submission order.
    pub fn executed(&self) -> &[ScheduledKernel] {
        &self.executed
    }

    /// Number of host launches performed.
    pub fn launch_count(&self) -> u64 {
        self.launch_count
    }

    /// Cumulative host launch overhead (µs) — the quantity Fig. 12's
    /// latency panel reports.
    pub fn launch_overhead_total_us(&self) -> f64 {
        self.launch_overhead_total_us
    }

    /// Aggregate device-side dispatch idle across all launches (µs) —
    /// summed per kernel, the Table II "Idle Time" analogue.
    pub fn dispatch_idle_total_us(&self) -> f64 {
        self.dispatch_idle_total_us
    }

    /// The device this timeline models.
    pub fn device(&self) -> &DeviceProps {
        &self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::rtx_4090;

    #[test]
    fn same_stream_serializes() {
        let mut tl = Timeline::new(rtx_4090());
        let s = tl.stream(0);
        let e1 = tl.launch("a", s, 100.0, 32, LaunchMode::Stream, &[]);
        let e2 = tl.launch("b", s, 100.0, 32, LaunchMode::Stream, &[]);
        assert!(e2 >= e1 + 100.0);
    }

    #[test]
    fn different_streams_overlap() {
        let mut tl = Timeline::new(rtx_4090());
        let s0 = tl.stream(0);
        let s1 = tl.stream(1);
        let e1 = tl.launch("a", s0, 100.0, 32, LaunchMode::Stream, &[]);
        let e2 = tl.launch("b", s1, 100.0, 32, LaunchMode::Stream, &[]);
        // b starts before a ends (plus launch overheads).
        assert!(e2 < e1 + 100.0);
    }

    #[test]
    fn capacity_limits_overlap() {
        let mut tl = Timeline::new(rtx_4090()); // 128 SMs
        let s0 = tl.stream(0);
        let s1 = tl.stream(1);
        let e1 = tl.launch("big", s0, 100.0, 128, LaunchMode::Stream, &[]);
        let e2 = tl.launch("second", s1, 100.0, 128, LaunchMode::Stream, &[]);
        assert!(e2 >= e1 + 100.0, "full-device kernels cannot overlap");
    }

    #[test]
    fn partial_capacity_overlaps() {
        let mut tl = Timeline::new(rtx_4090());
        let s0 = tl.stream(0);
        let s1 = tl.stream(1);
        let e1 = tl.launch("half", s0, 100.0, 64, LaunchMode::Stream, &[]);
        let e2 = tl.launch("other-half", s1, 100.0, 64, LaunchMode::Stream, &[]);
        assert!(e2 < e1 + 50.0);
    }

    #[test]
    fn deps_enforced_across_streams() {
        let mut tl = Timeline::new(rtx_4090());
        let s0 = tl.stream(0);
        let s1 = tl.stream(1);
        let e1 = tl.launch("producer", s0, 100.0, 16, LaunchMode::Stream, &[]);
        let sched_before = tl.executed().len();
        let e2 = tl.launch("consumer", s1, 10.0, 16, LaunchMode::Stream, &[e1]);
        assert_eq!(tl.executed().len(), sched_before + 1);
        assert!(tl.executed().last().unwrap().start_us >= e1);
        assert!(e2 >= e1 + 10.0);
    }

    #[test]
    fn graph_mode_slashes_launch_overhead() {
        let d = rtx_4090();
        let mut stream_tl = Timeline::new(d.clone());
        let mut graph_tl = Timeline::new(d);
        let s = stream_tl.stream(0);
        let g = graph_tl.stream(0);
        for i in 0..100 {
            stream_tl.launch(format!("k{i}"), s, 10.0, 64, LaunchMode::Stream, &[]);
            graph_tl.launch(format!("k{i}"), g, 10.0, 64, LaunchMode::Graph, &[]);
        }
        // Two orders of magnitude on host overhead (paper: up to 221x).
        let ratio = stream_tl.launch_overhead_total_us() / graph_tl.launch_overhead_total_us();
        assert!(ratio > 50.0, "ratio={ratio}");
    }

    #[test]
    fn idle_time_detected() {
        let mut tl = Timeline::new(rtx_4090());
        let s = tl.stream(0);
        let e1 = tl.launch("a", s, 10.0, 16, LaunchMode::Stream, &[]);
        // Force a gap via an artificial dependency far in the future.
        tl.launch("b", s, 10.0, 16, LaunchMode::Stream, &[e1 + 500.0]);
        assert!(tl.idle_us() >= 499.0);
    }

    #[test]
    fn makespan_monotone() {
        let mut tl = Timeline::new(rtx_4090());
        let s = tl.stream(0);
        let mut last = 0.0;
        for i in 0..10 {
            tl.launch(format!("k{i}"), s, 5.0, 8, LaunchMode::Stream, &[]);
            let m = tl.makespan_us();
            assert!(m >= last);
            last = m;
        }
    }
}
