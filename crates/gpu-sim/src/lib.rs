//! # hero-gpu-sim
//!
//! An analytical + discrete-event model of NVIDIA GPU execution, built as
//! the hardware substrate for the HERO-Sign reproduction. This environment
//! has no CUDA device, so the paper's performance behaviour is reproduced
//! from the same published resource budgets the real optimizations fight
//! over:
//!
//! * [`device`] — the Table VII GPU catalog (SMs, cores, clocks, register
//!   files, shared-memory capacities, launch overheads).
//! * [`mod@occupancy`] — Equation 1 and the full CUDA occupancy calculation.
//! * [`banks`] — the 32-bank shared-memory conflict model and the
//!   generalized padding strategy of Equations 2–3.
//! * [`isa`] — instruction classes (`prmt`, `mad`, `IADD3`, `shl`, …) with
//!   issue/latency costs; native vs PTX SHA-256 instruction mixes.
//! * [`kernel`] — analytic kernel descriptors.
//! * [`engine`] — the roofline timing model and Nsight-style metrics.
//! * [`stream`] — streams, launch overheads and a device timeline
//!   (the substrate for CUDA-Graph batching in `hero-task-graph`).
//! * [`compile`] — the compile-time cost model behind Table XI.
//! * [`profiler`] — aggregated Nsight-like reports.
//!
//! ## Example: occupancy of a register-hungry kernel
//!
//! ```
//! use hero_gpu_sim::device::rtx_4090;
//! use hero_gpu_sim::occupancy::{occupancy, BlockResources};
//!
//! let block = BlockResources { threads: 512, regs_per_thread: 128, smem_bytes: 0 };
//! let occ = occupancy(&rtx_4090(), &block);
//! assert!(occ.ratio < 0.5); // register-bound, like TREE_Sign in Table III
//! ```

#![warn(missing_docs)]

pub mod banks;
pub mod compile;
pub mod device;
pub mod engine;
pub mod isa;
pub mod kernel;
pub mod occupancy;
pub mod pcie;
pub mod profiler;
pub mod stream;
pub mod trace;

pub use device::{DeviceProps, SmemPolicy};
pub use engine::{simulate_kernel, KernelReport};
pub use kernel::KernelDesc;
pub use occupancy::{occupancy, BlockResources, Occupancy};
