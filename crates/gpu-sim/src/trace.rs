//! Chrome-tracing export of simulated timelines.
//!
//! [`chrome_trace`] renders a [`Timeline`]'s schedule as the Chrome Trace
//! Event Format (the `chrome://tracing` / Perfetto JSON), with one track
//! per stream — the simulator's stand-in for an Nsight Systems timeline
//! view. No serialization dependency: the format is simple enough to emit
//! by hand.

use crate::stream::Timeline;

/// Escapes a string for inclusion in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders `timeline` as Chrome Trace Event Format JSON.
///
/// Each kernel becomes a complete event (`ph: "X"`) on a track per
/// stream (`tid`), with timestamps in microseconds as the format expects.
/// Load the output in `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace(timeline: &Timeline) -> String {
    let mut events = Vec::new();
    // Process metadata: name the "process" after the device.
    events.push(format!(
        r#"{{"name":"process_name","ph":"M","pid":1,"args":{{"name":"{}"}}}}"#,
        json_escape(timeline.device().name)
    ));
    for kernel in timeline.executed() {
        events.push(format!(
            r#"{{"name":"{}","ph":"X","pid":1,"tid":{},"ts":{:.3},"dur":{:.3},"args":{{"submit_us":{:.3}}}}}"#,
            json_escape(&kernel.name),
            kernel.stream.0,
            kernel.start_us,
            kernel.end_us - kernel.start_us,
            kernel.submit_us,
        ));
    }
    format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::rtx_4090;
    use crate::stream::{LaunchMode, Timeline};

    fn sample_timeline() -> Timeline {
        let mut tl = Timeline::new(rtx_4090());
        let s0 = tl.stream(0);
        let s1 = tl.stream(1);
        let f = tl.launch("FORS_Sign", s0, 80.0, 64, LaunchMode::Stream, &[]);
        let t = tl.launch("TREE_Sign", s1, 120.0, 64, LaunchMode::Stream, &[]);
        tl.launch("WOTS+_Sign", s0, 20.0, 64, LaunchMode::Stream, &[f, t]);
        tl
    }

    #[test]
    fn emits_one_event_per_kernel_plus_metadata() {
        let tl = sample_timeline();
        let json = chrome_trace(&tl);
        assert_eq!(json.matches(r#""ph":"X""#).count(), 3);
        assert_eq!(json.matches(r#""ph":"M""#).count(), 1);
        assert!(json.contains("FORS_Sign"));
        assert!(json.contains("RTX 4090"));
    }

    #[test]
    fn events_carry_stream_tracks_and_durations() {
        let tl = sample_timeline();
        let json = chrome_trace(&tl);
        assert!(json.contains(r#""tid":0"#));
        assert!(json.contains(r#""tid":1"#));
        assert!(json.contains(r#""dur":120.000"#));
    }

    #[test]
    fn output_is_structurally_valid_json() {
        // No serde in this crate: check bracket/quote balance manually.
        let json = chrome_trace(&sample_timeline());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches('"').count() % 2, 0);
    }

    #[test]
    fn names_are_escaped() {
        let mut tl = Timeline::new(rtx_4090());
        let s = tl.stream(0);
        tl.launch("ker\"nel\\x", s, 1.0, 1, LaunchMode::Stream, &[]);
        let json = chrome_trace(&tl);
        assert!(json.contains(r#"ker\"nel\\x"#));
    }

    #[test]
    fn empty_timeline_renders() {
        let tl = Timeline::new(rtx_4090());
        let json = chrome_trace(&tl);
        assert!(json.contains("traceEvents"));
    }
}
