//! GPU device catalog (Table VII of the paper).
//!
//! Every quantity the model consumes is a published hardware parameter:
//! SM count, CUDA cores per SM, base clock, register file, shared-memory
//! capacities, warp limits. The paper's optimizations are wins against
//! exactly these budgets, so carrying them faithfully is what makes the
//! simulated speedups meaningful.

use std::fmt;

/// NVIDIA GPU microarchitecture generations used in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Arch {
    /// GTX 10-series (SM 6.x).
    Pascal,
    /// V100 (SM 7.0).
    Volta,
    /// RTX 20-series (SM 7.5).
    Turing,
    /// A100 (SM 8.0).
    Ampere,
    /// RTX 40-series (SM 8.9).
    Ada,
    /// H100 (SM 9.0).
    Hopper,
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Arch::Pascal => "Pascal",
            Arch::Volta => "Volta",
            Arch::Turing => "Turing",
            Arch::Ampere => "Ampere",
            Arch::Ada => "Ada",
            Arch::Hopper => "Hopper",
        };
        f.write_str(s)
    }
}

/// Static properties of a GPU, the `cudaGetDeviceProperties` surface the
/// Tree Tuning algorithm queries (Fig. 1).
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceProps {
    /// Marketing name, e.g. `"RTX 4090"`.
    pub name: &'static str,
    /// Microarchitecture.
    pub arch: Arch,
    /// SM version, e.g. 89 for `sm_89`.
    pub sm_version: u32,
    /// Streaming multiprocessor count.
    pub sm_count: u32,
    /// CUDA cores per SM.
    pub cores_per_sm: u32,
    /// Base clock in MHz (Table VII).
    pub base_clock_mhz: u32,
    /// Maximum resident warps per SM (`W_max` in Eq. 1).
    pub max_warps_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Maximum thread blocks resident per SM.
    pub max_blocks_per_sm: u32,
    /// 32-bit registers per SM (`R_total` in Eq. 1).
    pub registers_per_sm: u32,
    /// Maximum registers addressable per thread.
    pub max_registers_per_thread: u32,
    /// Static shared memory limit per block (bytes) — 48 KiB everywhere.
    pub smem_static_per_block: u32,
    /// Maximum dynamic (opt-in) shared memory per block (bytes).
    pub smem_dynamic_max_per_block: u32,
    /// Shared memory per SM (bytes).
    pub smem_per_sm: u32,
    /// Shared-memory banks (4-byte wide).
    pub smem_banks: u32,
    /// Global-memory bandwidth in GB/s.
    pub mem_bandwidth_gb_s: f64,
    /// Host↔device PCIe bandwidth in GB/s (effective, one direction).
    pub pcie_bandwidth_gb_s: f64,
    /// Host-side latency of one stream kernel launch (µs).
    pub kernel_launch_overhead_us: f64,
    /// Host-side latency of launching one instantiated task graph (µs).
    pub graph_launch_overhead_us: f64,
}

impl DeviceProps {
    /// Total CUDA cores (`sm_count · cores_per_sm`).
    pub fn total_cores(&self) -> u64 {
        self.sm_count as u64 * self.cores_per_sm as u64
    }

    /// Peak ALU issue rate in cycles per second × lanes.
    pub fn peak_lane_cycles_per_sec(&self) -> f64 {
        self.total_cores() as f64 * self.base_clock_mhz as f64 * 1.0e6
    }

    /// The shared-memory budget the Tree Tuning algorithm's
    /// `SEMEPerBlock()` query returns (§III-B, Algorithm 1).
    pub fn seme_per_block(&self, policy: SmemPolicy) -> u32 {
        match policy {
            SmemPolicy::Static => self.smem_static_per_block,
            SmemPolicy::DynamicMax => self.smem_dynamic_max_per_block,
        }
    }
}

/// Which shared-memory limit `SEMEPerBlock()` reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SmemPolicy {
    /// 48 KiB static limit (used for the RTX 4090 results of Table IV).
    #[default]
    Static,
    /// Architecture's opt-in dynamic maximum (used for Fig. 14 retuning).
    DynamicMax,
}

/// The six GPUs of Table VII.
///
/// Clock rates are the paper's; resource limits are the published CUDA
/// occupancy-calculator values for each architecture.
pub fn catalog() -> Vec<DeviceProps> {
    vec![
        gtx_1070(),
        v100(),
        rtx_2080_ti(),
        a100(),
        rtx_4090(),
        h100(),
    ]
}

/// GTX 1070 (Pascal, SM 6.1).
pub fn gtx_1070() -> DeviceProps {
    DeviceProps {
        name: "GTX 1070",
        arch: Arch::Pascal,
        sm_version: 61,
        sm_count: 15,
        cores_per_sm: 128,
        base_clock_mhz: 1506,
        max_warps_per_sm: 64,
        max_threads_per_block: 1024,
        max_blocks_per_sm: 32,
        registers_per_sm: 65_536,
        max_registers_per_thread: 255,
        smem_static_per_block: 48 * 1024,
        smem_dynamic_max_per_block: 48 * 1024, // Pascal has no opt-in beyond 48K
        smem_per_sm: 96 * 1024,
        smem_banks: 32,
        mem_bandwidth_gb_s: 256.0,
        pcie_bandwidth_gb_s: 12.0,
        kernel_launch_overhead_us: 2.2,
        graph_launch_overhead_us: 4.5,
    }
}

/// Tesla V100 (Volta, SM 7.0).
pub fn v100() -> DeviceProps {
    DeviceProps {
        name: "V100",
        arch: Arch::Volta,
        sm_version: 70,
        sm_count: 80,
        cores_per_sm: 64,
        base_clock_mhz: 1230,
        max_warps_per_sm: 64,
        max_threads_per_block: 1024,
        max_blocks_per_sm: 32,
        registers_per_sm: 65_536,
        max_registers_per_thread: 255,
        smem_static_per_block: 48 * 1024,
        smem_dynamic_max_per_block: 96 * 1024,
        smem_per_sm: 96 * 1024,
        smem_banks: 32,
        mem_bandwidth_gb_s: 900.0,
        pcie_bandwidth_gb_s: 12.5,
        kernel_launch_overhead_us: 1.8,
        graph_launch_overhead_us: 4.0,
    }
}

/// RTX 2080 Ti (Turing, SM 7.5).
pub fn rtx_2080_ti() -> DeviceProps {
    DeviceProps {
        name: "RTX 2080 Ti",
        arch: Arch::Turing,
        sm_version: 75,
        sm_count: 68,
        cores_per_sm: 64,
        base_clock_mhz: 1350,
        max_warps_per_sm: 32,
        max_threads_per_block: 1024,
        max_blocks_per_sm: 16,
        registers_per_sm: 65_536,
        max_registers_per_thread: 255,
        smem_static_per_block: 48 * 1024,
        smem_dynamic_max_per_block: 64 * 1024,
        smem_per_sm: 64 * 1024,
        smem_banks: 32,
        mem_bandwidth_gb_s: 616.0,
        pcie_bandwidth_gb_s: 12.5,
        kernel_launch_overhead_us: 1.7,
        graph_launch_overhead_us: 3.8,
    }
}

/// A100 (Ampere, SM 8.0).
pub fn a100() -> DeviceProps {
    DeviceProps {
        name: "A100",
        arch: Arch::Ampere,
        sm_version: 80,
        sm_count: 108,
        cores_per_sm: 64,
        base_clock_mhz: 1095,
        max_warps_per_sm: 64,
        max_threads_per_block: 1024,
        max_blocks_per_sm: 32,
        registers_per_sm: 65_536,
        max_registers_per_thread: 255,
        smem_static_per_block: 48 * 1024,
        smem_dynamic_max_per_block: 163 * 1024,
        smem_per_sm: 164 * 1024,
        smem_banks: 32,
        mem_bandwidth_gb_s: 1555.0,
        pcie_bandwidth_gb_s: 24.0,
        kernel_launch_overhead_us: 1.5,
        graph_launch_overhead_us: 3.3,
    }
}

/// RTX 4090 (Ada Lovelace, SM 8.9) — the paper's primary platform.
pub fn rtx_4090() -> DeviceProps {
    DeviceProps {
        name: "RTX 4090",
        arch: Arch::Ada,
        sm_version: 89,
        sm_count: 128,
        cores_per_sm: 128,
        base_clock_mhz: 2235,
        max_warps_per_sm: 48,
        max_threads_per_block: 1024,
        max_blocks_per_sm: 24,
        registers_per_sm: 65_536,
        max_registers_per_thread: 255,
        smem_static_per_block: 48 * 1024,
        smem_dynamic_max_per_block: 99 * 1024,
        smem_per_sm: 100 * 1024,
        smem_banks: 32,
        mem_bandwidth_gb_s: 1008.0,
        pcie_bandwidth_gb_s: 22.0,
        kernel_launch_overhead_us: 1.39,
        graph_launch_overhead_us: 3.0,
    }
}

/// H100 (Hopper, SM 9.0).
pub fn h100() -> DeviceProps {
    DeviceProps {
        name: "H100",
        arch: Arch::Hopper,
        sm_version: 90,
        sm_count: 132,
        cores_per_sm: 128,
        base_clock_mhz: 1035,
        max_warps_per_sm: 64,
        max_threads_per_block: 1024,
        max_blocks_per_sm: 32,
        registers_per_sm: 65_536,
        max_registers_per_thread: 255,
        smem_static_per_block: 48 * 1024,
        smem_dynamic_max_per_block: 227 * 1024,
        smem_per_sm: 228 * 1024,
        smem_banks: 32,
        mem_bandwidth_gb_s: 3350.0,
        pcie_bandwidth_gb_s: 50.0,
        kernel_launch_overhead_us: 1.45,
        graph_launch_overhead_us: 3.2,
    }
}

/// Looks a device up by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<DeviceProps> {
    catalog()
        .into_iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table_vii() {
        let devices = catalog();
        assert_eq!(devices.len(), 6);
        let clocks: Vec<(String, u32)> = devices
            .iter()
            .map(|d| (d.name.to_string(), d.base_clock_mhz))
            .collect();
        assert!(clocks.contains(&("GTX 1070".into(), 1506)));
        assert!(clocks.contains(&("V100".into(), 1230)));
        assert!(clocks.contains(&("RTX 2080 Ti".into(), 1350)));
        assert!(clocks.contains(&("A100".into(), 1095)));
        assert!(clocks.contains(&("RTX 4090".into(), 2235)));
        assert!(clocks.contains(&("H100".into(), 1035)));
    }

    #[test]
    fn rtx_4090_core_counts_match_paper() {
        // §IV-F: 16,384 cores on 4090 vs 16,896 on H100.
        assert_eq!(rtx_4090().total_cores(), 16_384);
        assert_eq!(h100().total_cores(), 16_896);
        assert_eq!(gtx_1070().total_cores(), 1_920); // "limited 1920 cores"
    }

    #[test]
    fn clock_ratio_matches_paper() {
        // §IV-F: 4090 has a 2.16x frequency advantage over H100.
        let ratio = rtx_4090().base_clock_mhz as f64 / h100().base_clock_mhz as f64;
        assert!((ratio - 2.16).abs() < 0.01, "ratio={ratio}");
    }

    #[test]
    fn instruction_throughput_ordering() {
        // Throughput ∝ cores × frequency: 4090 must beat H100 (§IV-F).
        assert!(rtx_4090().peak_lane_cycles_per_sec() > h100().peak_lane_cycles_per_sec());
    }

    #[test]
    fn seme_policies() {
        let d = rtx_4090();
        assert_eq!(d.seme_per_block(SmemPolicy::Static), 48 * 1024);
        assert_eq!(d.seme_per_block(SmemPolicy::DynamicMax), 99 * 1024);
        // Hopper's 228 KB/SM headline (§IV-F).
        assert_eq!(h100().smem_per_sm, 228 * 1024);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("rtx 4090").unwrap().arch, Arch::Ada);
        assert!(by_name("RTX 5090").is_none());
    }
}
