//! Shared-memory bank model and the paper's generalized padding strategy
//! (§III-E, Equations 2 and 3).
//!
//! Shared memory is organized as 32 banks of 4 bytes. A warp's access
//! serializes when two threads touch *different* 4-byte words in the same
//! bank within one transaction. SPHINCS+ reductions access 16-, 24- and
//! 32-byte nodes per thread; the padding strategy inserts one spare bank
//! (4 bytes) after every `128·R`-byte transaction region, where
//! `128·R = B_n · 4 · T_h` — `B_n` banks per thread, a pad every `T_h`
//! threads.

/// Number of banks (4-byte wide) per SM shared memory.
pub const NUM_BANKS: usize = 32;

/// Bytes per bank word.
pub const BANK_WIDTH: usize = 4;

/// Bytes per shared-memory transaction (one warp phase).
pub const TRANSACTION_BYTES: usize = 128;

/// Padding layout derived from the paper's Equations 2–3.
///
/// A [`PaddingScheme`] rewrites logical byte offsets into padded physical
/// offsets; [`PaddingScheme::none`] is the identity (the baseline layout).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PaddingScheme {
    /// Insert one 4-byte pad after every `region_bytes` of logical data;
    /// `None` disables padding.
    region_bytes: Option<usize>,
}

impl PaddingScheme {
    /// No padding: logical = physical (baseline layout).
    pub const fn none() -> Self {
        Self { region_bytes: None }
    }

    /// Padding for a per-thread access `width` in bytes, per Equations 2–3.
    ///
    /// For widths dividing 128 (16 B, 32 B), `R = 1`: one pad per 128-byte
    /// transaction (Eq. 2). For 24 B, the minimal region is `R = 3`
    /// (`lcm(24, 128)/128 = 3`): one pad after every 384 bytes = every 16
    /// threads (Eq. 3, Fig. 9).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or not a multiple of 4.
    pub fn for_width(width: usize) -> Self {
        assert!(
            width > 0 && width.is_multiple_of(BANK_WIDTH),
            "width must be a positive multiple of 4"
        );
        // Smallest R such that 128·R is a multiple of the access width:
        // then T_h = 128R/width threads fit exactly and the pad shifts the
        // next group by one bank.
        let mut r = 1;
        while !(TRANSACTION_BYTES * r).is_multiple_of(width) {
            r += 1;
        }
        Self {
            region_bytes: Some(TRANSACTION_BYTES * r),
        }
    }

    /// The `R` of Equation 3 (`None` if unpadded).
    pub fn region_rows(&self) -> Option<usize> {
        self.region_bytes.map(|b| b / TRANSACTION_BYTES)
    }

    /// The thread interval `T_h` after which a pad bank is inserted, for a
    /// given access `width`.
    pub fn thread_interval(&self, width: usize) -> Option<usize> {
        self.region_bytes.map(|b| b / width)
    }

    /// Maps a logical byte offset to its physical offset.
    pub fn physical(&self, logical: usize) -> usize {
        match self.region_bytes {
            None => logical,
            Some(region) => logical + (logical / region) * BANK_WIDTH,
        }
    }

    /// Physical bytes needed to store `logical_len` logical bytes.
    pub fn padded_len(&self, logical_len: usize) -> usize {
        match self.region_bytes {
            None => logical_len,
            Some(region) => logical_len + logical_len.div_ceil(region) * BANK_WIDTH,
        }
    }
}

/// Statistics of one warp-wide access.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Transaction phases issued (each covers up to 128 bytes of distinct
    /// words).
    pub transactions: u64,
    /// Extra serialized phases caused by bank conflicts (0 = conflict-free).
    pub conflicts: u64,
}

impl AccessStats {
    /// Merges another stats record into this one.
    pub fn merge(&mut self, other: AccessStats) {
        self.transactions += other.transactions;
        self.conflicts += other.conflicts;
    }
}

/// Counts bank conflicts for one warp access where thread `i` touches
/// `width` bytes starting at physical byte offset `offsets[i]`.
///
/// The model mirrors hardware: each thread's span splits into 4-byte
/// words; words are served in phases of one word per thread; within a
/// phase, threads hitting different words in the same bank serialize
/// (multicast of the *same* word is free). Following the paper's §III-E2
/// observation, phases coalesce across a `128·R`-byte region, i.e. a
/// phase's conflict degree is evaluated over the whole warp at once.
pub fn warp_access_conflicts(offsets: &[usize], width: usize) -> AccessStats {
    assert!(
        width.is_multiple_of(BANK_WIDTH),
        "width must be whole words"
    );
    let words_per_thread = width / BANK_WIDTH;
    let mut stats = AccessStats::default();

    for phase in 0..words_per_thread {
        // Word index accessed by each active thread in this phase.
        let mut bank_words: Vec<Vec<usize>> = vec![Vec::new(); NUM_BANKS];
        for &off in offsets {
            let word = off / BANK_WIDTH + phase;
            let bank = word % NUM_BANKS;
            if !bank_words[bank].contains(&word) {
                bank_words[bank].push(word);
            }
        }
        // Serialized phases = max distinct words in any one bank.
        let ways = bank_words.iter().map(Vec::len).max().unwrap_or(0).max(1) as u64;
        stats.transactions += 1;
        stats.conflicts += ways - 1;
    }
    stats
}

/// A simulated shared-memory array that records conflict statistics for
/// every warp-shaped access through a [`PaddingScheme`].
///
/// Kernels store `n`-byte nodes at logical slots; loads and stores during
/// tree reduction go through [`SharedMem::warp_load`] /
/// [`SharedMem::warp_store`], which is how Table VI's conflict counts are
/// *measured* rather than estimated.
#[derive(Clone, Debug)]
pub struct SharedMem {
    scheme: PaddingScheme,
    node_bytes: usize,
    load_stats: AccessStats,
    store_stats: AccessStats,
}

impl SharedMem {
    /// Creates a recorder for `node_bytes`-wide elements under `scheme`.
    pub fn new(scheme: PaddingScheme, node_bytes: usize) -> Self {
        Self {
            scheme,
            node_bytes,
            load_stats: AccessStats::default(),
            store_stats: AccessStats::default(),
        }
    }

    /// The padding scheme in force.
    pub fn scheme(&self) -> PaddingScheme {
        self.scheme
    }

    /// Records a warp load where each listed thread reads the node at the
    /// given logical slot index.
    pub fn warp_load(&mut self, slots: &[usize]) {
        let stats = self.access(slots);
        self.load_stats.merge(stats);
    }

    /// Records a warp store of one node per listed slot.
    pub fn warp_store(&mut self, slots: &[usize]) {
        let stats = self.access(slots);
        self.store_stats.merge(stats);
    }

    fn access(&self, slots: &[usize]) -> AccessStats {
        let offsets: Vec<usize> = slots
            .iter()
            .map(|&s| self.scheme.physical(s * self.node_bytes))
            .collect();
        warp_access_conflicts(&offsets, self.node_bytes)
    }

    /// Cumulative load statistics.
    pub fn load_stats(&self) -> AccessStats {
        self.load_stats
    }

    /// Cumulative store statistics.
    pub fn store_stats(&self) -> AccessStats {
        self.store_stats
    }

    /// Total conflicts (loads + stores).
    pub fn total_conflicts(&self) -> u64 {
        self.load_stats.conflicts + self.store_stats.conflicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq2_parameters_for_16_and_32_bytes() {
        // Eq. 2: 128 = B_n·4·T_h. 16 B → B_n=4, T_h=8; 32 B → B_n=8, T_h=4.
        let p16 = PaddingScheme::for_width(16);
        assert_eq!(p16.region_rows(), Some(1));
        assert_eq!(p16.thread_interval(16), Some(8));
        let p32 = PaddingScheme::for_width(32);
        assert_eq!(p32.region_rows(), Some(1));
        assert_eq!(p32.thread_interval(32), Some(4));
    }

    #[test]
    fn eq3_parameters_for_24_bytes() {
        // Eq. 3: 128·R = B_n·4·T_h with R=3 → pad after thread 16 (Fig. 9).
        let p24 = PaddingScheme::for_width(24);
        assert_eq!(p24.region_rows(), Some(3));
        assert_eq!(p24.thread_interval(24), Some(16));
    }

    #[test]
    fn physical_mapping_injective_and_monotone() {
        let p = PaddingScheme::for_width(16);
        let mut last = None;
        for logical in 0..4096 {
            let phys = p.physical(logical);
            if let Some(prev) = last {
                assert!(phys > prev);
            }
            last = Some(phys);
        }
    }

    #[test]
    fn unpadded_contiguous_16b_has_conflicts() {
        // 32 threads × 16 B contiguous: words 0..128. Phase 0 touches word
        // 0,4,8,… → bank 0,4,8,… each bank hit by 4 distinct words → 3
        // extra phases per phase → 4 phases × 3 = 12 conflicts.
        let offsets: Vec<usize> = (0..32).map(|i| i * 16).collect();
        let stats = warp_access_conflicts(&offsets, 16);
        assert_eq!(stats.transactions, 4);
        assert_eq!(stats.conflicts, 12);
    }

    #[test]
    fn padded_contiguous_16b_conflict_free() {
        let p = PaddingScheme::for_width(16);
        let offsets: Vec<usize> = (0..32).map(|i| p.physical(i * 16)).collect();
        let stats = warp_access_conflicts(&offsets, 16);
        assert_eq!(stats.conflicts, 0, "padding must eliminate 16B conflicts");
    }

    #[test]
    fn padded_contiguous_32b_conflict_free() {
        let p = PaddingScheme::for_width(32);
        let offsets: Vec<usize> = (0..32).map(|i| p.physical(i * 32)).collect();
        let stats = warp_access_conflicts(&offsets, 32);
        assert_eq!(stats.conflicts, 0, "padding must eliminate 32B conflicts");
    }

    #[test]
    fn unpadded_32b_is_heavily_conflicted() {
        let offsets: Vec<usize> = (0..32).map(|i| i * 32).collect();
        let stats = warp_access_conflicts(&offsets, 32);
        assert!(
            stats.conflicts >= 7 * 8,
            "expected ≥7-way conflicts, got {:?}",
            stats
        );
    }

    #[test]
    fn padded_24b_at_most_2way() {
        // §III-E2: with Eq. 3 padding, 24-byte accesses induce at most a
        // 2-way conflict per phase.
        let p = PaddingScheme::for_width(24);
        let offsets: Vec<usize> = (0..32).map(|i| p.physical(i * 24)).collect();
        let stats = warp_access_conflicts(&offsets, 24);
        let phases = stats.transactions;
        assert!(
            stats.conflicts <= phases,
            "≤1 extra phase per phase: {stats:?}"
        );
        // And strictly better than unpadded.
        let raw: Vec<usize> = (0..32).map(|i| i * 24).collect();
        let unpadded = warp_access_conflicts(&raw, 24);
        assert!(stats.conflicts < unpadded.conflicts);
    }

    #[test]
    fn broadcast_is_free() {
        // All threads reading the same node: multicast, no conflicts.
        let offsets = vec![64usize; 32];
        let stats = warp_access_conflicts(&offsets, 16);
        assert_eq!(stats.conflicts, 0);
    }

    #[test]
    fn strided_reduction_load_pattern() {
        // Reduction level: thread i loads nodes 2i and 2i+1 (measured as
        // two warp accesses). Unpadded 16B: stride-32B pattern conflicts.
        let even: Vec<usize> = (0..32).map(|i| (2 * i) * 16).collect();
        let unpadded = warp_access_conflicts(&even, 16);
        assert!(unpadded.conflicts > 0);
        let p = PaddingScheme::for_width(16);
        let padded: Vec<usize> = (0..32).map(|i| p.physical((2 * i) * 16)).collect();
        let padded_stats = warp_access_conflicts(&padded, 16);
        assert!(padded_stats.conflicts < unpadded.conflicts);
    }

    #[test]
    fn shared_mem_recorder_accumulates() {
        let mut sm = SharedMem::new(PaddingScheme::none(), 16);
        sm.warp_load(&(0..32).map(|i| 2 * i).collect::<Vec<_>>());
        sm.warp_store(&(0..32).collect::<Vec<_>>());
        assert!(sm.load_stats().transactions > 0);
        assert!(sm.store_stats().transactions > 0);
        assert_eq!(
            sm.total_conflicts(),
            sm.load_stats().conflicts + sm.store_stats().conflicts
        );
    }

    #[test]
    fn padded_len_accounts_for_pads() {
        let p = PaddingScheme::for_width(16);
        assert_eq!(p.padded_len(128), 128 + 4);
        assert_eq!(p.padded_len(256), 256 + 8);
        assert_eq!(PaddingScheme::none().padded_len(256), 256);
    }

    #[test]
    #[should_panic(expected = "width must be a positive multiple of 4")]
    fn rejects_unaligned_width() {
        let _ = PaddingScheme::for_width(10);
    }
}
