//! Property-based tests over the GPU model: padding/bank invariants,
//! occupancy monotonicity, timing-model sanity, timeline conservation.

use hero_gpu_sim::banks::{warp_access_conflicts, PaddingScheme, BANK_WIDTH};
use hero_gpu_sim::device::{catalog, rtx_4090};
use hero_gpu_sim::engine::simulate_kernel;
use hero_gpu_sim::isa::{InstrClass, Sha2Path};
use hero_gpu_sim::kernel::KernelDesc;
use hero_gpu_sim::occupancy::{occupancy, BlockResources};
use hero_gpu_sim::stream::{LaunchMode, Timeline};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn padding_physical_mapping_is_strictly_monotone(width_idx in 0usize..3, a in 0usize..10_000, b in 0usize..10_000) {
        let width = [16, 24, 32][width_idx];
        let scheme = PaddingScheme::for_width(width);
        prop_assume!(a < b);
        prop_assert!(scheme.physical(a) < scheme.physical(b));
        // Identity scheme really is the identity.
        prop_assert_eq!(PaddingScheme::none().physical(a), a);
    }

    #[test]
    fn padded_contiguous_access_conflict_free_16_32(width_idx in 0usize..2, region in 0usize..64) {
        // Eq. 2 widths: contiguous warp accesses aligned to the padding
        // interval T_h (as the kernels' warp→slot mapping guarantees) are
        // conflict-free at any region offset.
        let width = [16usize, 32][width_idx];
        let scheme = PaddingScheme::for_width(width);
        let base_slot = region * scheme.thread_interval(width).unwrap();
        let offsets: Vec<usize> = (0..32).map(|i| scheme.physical((base_slot + i) * width)).collect();
        let stats = warp_access_conflicts(&offsets, width);
        prop_assert_eq!(stats.conflicts, 0, "width {} base {}", width, base_slot);
    }

    #[test]
    fn padding_never_increases_conflicts(width_idx in 0usize..3, stride in 1usize..4, base in 0usize..64) {
        let width = [16, 24, 32][width_idx];
        let scheme = PaddingScheme::for_width(width);
        let raw: Vec<usize> = (0..32).map(|i| (base + i * stride) * width).collect();
        let padded: Vec<usize> = raw.iter().map(|&o| scheme.physical(o)).collect();
        let before = warp_access_conflicts(&raw, width).conflicts;
        let after = warp_access_conflicts(&padded, width).conflicts;
        prop_assert!(after <= before, "width {width} stride {stride}: {before} -> {after}");
    }

    #[test]
    fn conflicts_zero_iff_distinct_banks(words in proptest::collection::vec(0usize..1024, 32)) {
        let offsets: Vec<usize> = words.iter().map(|w| w * BANK_WIDTH).collect();
        let stats = warp_access_conflicts(&offsets, BANK_WIDTH);
        let mut per_bank: std::collections::HashMap<usize, std::collections::HashSet<usize>> = Default::default();
        for &w in &words {
            per_bank.entry(w % 32).or_default().insert(w);
        }
        let max_ways = per_bank.values().map(|s| s.len()).max().unwrap_or(1) as u64;
        prop_assert_eq!(stats.conflicts, max_ways - 1);
    }

    #[test]
    fn occupancy_monotone_in_each_resource(threads_pow in 5u32..10, regs in 16u32..128, smem_kb in 0u32..48) {
        let d = rtx_4090();
        let threads = 1u32 << threads_pow;
        let base = BlockResources { threads, regs_per_thread: regs, smem_bytes: smem_kb * 1024 };
        let occ0 = occupancy(&d, &base);
        let more_regs = BlockResources { regs_per_thread: regs + 16, ..base };
        prop_assert!(occupancy(&d, &more_regs).ratio <= occ0.ratio + 1e-12);
        let more_smem = BlockResources { smem_bytes: (smem_kb + 8) * 1024, ..base };
        prop_assert!(occupancy(&d, &more_smem).ratio <= occ0.ratio + 1e-12);
    }

    #[test]
    fn kernel_time_monotone_in_work(compressions in 1u64..1_000_000, extra in 1u64..1_000_000) {
        let d = rtx_4090();
        let block = BlockResources { threads: 256, regs_per_thread: 64, smem_bytes: 0 };
        let mut small = KernelDesc::empty("k", 128, block);
        small.instr_total = Sha2Path::Native.compression_mix().scaled(compressions);
        let mut large = KernelDesc::empty("k", 128, block);
        large.instr_total = Sha2Path::Native.compression_mix().scaled(compressions + extra);
        prop_assert!(
            simulate_kernel(&d, &large).time_us >= simulate_kernel(&d, &small).time_us
        );
    }

    #[test]
    fn kernel_time_finite_for_any_reasonable_desc(
        grid in 1u32..4096, threads_pow in 5u32..10, regs in 16u32..200,
        smem_kb in 0u32..64, active in 0.01f64..1.0, work in 1u64..10_000_000
    ) {
        for d in catalog() {
            let block = BlockResources {
                threads: 1 << threads_pow,
                regs_per_thread: regs,
                smem_bytes: smem_kb * 1024,
            };
            let mut desc = KernelDesc::empty("any", grid, block);
            desc.active_thread_fraction = active;
            desc.instr_total.add_count(InstrClass::Alu, work);
            desc.smem_transactions = work / 10;
            desc.gmem_bytes = work;
            desc.syncs_per_block = 8;
            let r = simulate_kernel(&d, &desc);
            prop_assert!(r.time_us.is_finite() && r.time_us >= 0.0, "{}", d.name);
            prop_assert!(r.compute_throughput_pct <= 100.0);
            prop_assert!(r.memory_throughput_pct <= 100.0);
        }
    }

    #[test]
    fn timeline_is_work_conserving(
        durations in proptest::collection::vec(1.0f64..200.0, 1..64),
        sms in proptest::collection::vec(1u32..128, 1..64),
        streams in 1usize..16
    ) {
        let d = rtx_4090();
        let sm_count = d.sm_count as f64;
        let mut tl = Timeline::new(d);
        let n = durations.len().min(sms.len());
        for i in 0..n {
            let s = tl.stream(i % streams);
            tl.launch(format!("k{i}"), s, durations[i], sms[i], LaunchMode::Graph, &[]);
        }
        // Makespan can never undercut total SM-time / capacity.
        let sm_time: f64 = (0..n).map(|i| durations[i] * sms[i].min(128) as f64).sum();
        prop_assert!(tl.makespan_us() + 1e-6 >= sm_time / sm_count);
        // And never exceeds fully-serial execution plus overheads.
        let serial: f64 = (0..n).map(|i| durations[i]).sum();
        prop_assert!(tl.makespan_us() <= serial + n as f64 * 2.0 + 10.0);
    }

    #[test]
    fn timeline_capacity_never_violated(
        durations in proptest::collection::vec(1.0f64..50.0, 1..48),
        sms in proptest::collection::vec(1u32..100, 1..48)
    ) {
        let d = rtx_4090();
        let cap = d.sm_count;
        let mut tl = Timeline::new(d);
        let n = durations.len().min(sms.len());
        for i in 0..n {
            let s = tl.stream(i % 8);
            tl.launch(format!("k{i}"), s, durations[i], sms[i], LaunchMode::Stream, &[]);
        }
        // Check usage at every span boundary.
        let mut boundaries: Vec<f64> = Vec::new();
        for k in tl.executed() {
            boundaries.push(k.start_us);
        }
        for &t in &boundaries {
            let used: u32 = tl
                .executed()
                .iter()
                .zip(sms.iter())
                .filter(|(k, _)| k.start_us <= t && k.end_us > t)
                .map(|(_, &s)| s.min(cap))
                .sum();
            prop_assert!(used <= cap, "usage {used} at t={t}");
        }
    }
}
