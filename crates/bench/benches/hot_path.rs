//! Criterion benches of the batched hot path against the scalar
//! single-call APIs: multi-lane `F`/`H`/`PRF`, flat-buffer treehash, WOTS+
//! leaf generation, and end-to-end reduced-parameter `sign` (batched vs
//! the preserved scalar baseline).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hero_sphincs::address::{Address, AddressType};
use hero_sphincs::hash::HashCtx;
use hero_sphincs::merkle;
use hero_sphincs::params::Params;

const BATCH: usize = 256;

fn tiny_params() -> Params {
    let mut p = Params::sphincs_128f();
    p.h = 6;
    p.d = 3;
    p.log_t = 4;
    p.k = 8;
    p
}

fn addresses(count: usize) -> Vec<Address> {
    (0..count as u32)
        .map(|i| {
            let mut a = Address::new();
            a.set_type(AddressType::WotsHash);
            a.set_chain(i);
            a
        })
        .collect()
}

fn bench_batched_vs_scalar_hashing(c: &mut Criterion) {
    let params = Params::sphincs_128f();
    let n = params.n;
    let ctx = HashCtx::new(params, &[7u8; 16]);
    let adrs = addresses(BATCH);
    let msgs = vec![0x5Au8; BATCH * n];
    let pairs = vec![0xA5u8; BATCH * 2 * n];
    let sk_seed = vec![9u8; n];

    let mut group = c.benchmark_group("hashing_256_calls");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("f_scalar", |b| {
        b.iter(|| {
            let mut out = vec![0u8; BATCH * n];
            for i in 0..BATCH {
                out[i * n..(i + 1) * n]
                    .copy_from_slice(&ctx.f(&adrs[i], &msgs[i * n..(i + 1) * n]));
            }
            out
        })
    });
    group.bench_function("f_many", |b| {
        b.iter(|| {
            let mut out = vec![0u8; BATCH * n];
            ctx.f_many(&adrs, &msgs, &mut out);
            out
        })
    });
    group.bench_function("h_many", |b| {
        b.iter(|| {
            let mut out = vec![0u8; BATCH * n];
            ctx.h_many(&adrs, &pairs, &mut out);
            out
        })
    });
    group.bench_function("prf_many", |b| {
        b.iter(|| {
            let mut out = vec![0u8; BATCH * n];
            ctx.prf_many(&adrs, &sk_seed, &mut out);
            out
        })
    });
    group.finish();
}

fn bench_treehash(c: &mut Criterion) {
    let params = Params::sphincs_128f();
    let n = params.n;
    let ctx = HashCtx::new(params, &[3u8; 16]);
    let adrs = Address::new();
    let height = 8;
    c.bench_function("treehash_flat_256_leaves", |b| {
        b.iter(|| {
            merkle::treehash_flat(&ctx, height, 0, &adrs, 0, |buf| {
                for (i, slot) in buf.chunks_exact_mut(n).enumerate() {
                    slot[..4].copy_from_slice(&(i as u32).to_be_bytes());
                    slot[4..].fill(0);
                }
            })
        })
    });
}

fn bench_wots_leaf(c: &mut Criterion) {
    let params = Params::sphincs_128f();
    let ctx = HashCtx::new(params, &[5u8; 16]);
    let sk_seed = vec![4u8; 16];
    c.bench_function("wots_gen_leaf_batched", |b| {
        let mut out = vec![0u8; params.n];
        b.iter(|| {
            hero_sphincs::hypertree::wots_leaf_into(&ctx, &sk_seed, 0, 0, 0, &mut out);
            out.clone()
        })
    });
}

fn bench_end_to_end_sign(c: &mut Criterion) {
    let params = tiny_params();
    let n = params.n;
    let (sk, _) =
        hero_sphincs::sign::keygen_from_seeds(params, vec![1u8; n], vec![2u8; n], vec![3u8; n]);
    c.bench_function("sign_batched_reduced_params", |b| {
        b.iter(|| sk.sign(b"hot path bench"))
    });
    c.bench_function("sign_scalar_baseline_reduced_params", |b| {
        b.iter(|| hero_bench::baseline::sign(&sk, b"hot path bench"))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_batched_vs_scalar_hashing, bench_treehash, bench_wots_leaf, bench_end_to_end_sign
);
criterion_main!(benches);
