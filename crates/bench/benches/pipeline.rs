//! Criterion benches over the full-pipeline simulation (Fig. 12/13
//! machinery): multi-batch timeline construction with and without task
//! graphs, across batch sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hero_gpu_sim::device::rtx_4090;
use hero_sign::engine::{HeroSigner, OptConfig, PipelineOptions};
use hero_sphincs::params::Params;

fn bench_pipeline(c: &mut Criterion) {
    let device = rtx_4090();
    let p = Params::sphincs_128f();
    let mut group = c.benchmark_group("fig12_pipeline_simulation");

    let hero = HeroSigner::hero(device.clone(), p).unwrap();
    let mut stream_cfg = OptConfig::hero();
    stream_cfg.graph = false;
    let hero_stream = HeroSigner::builder(device.clone(), p)
        .config(stream_cfg)
        .build()
        .unwrap();
    let baseline = HeroSigner::baseline(device.clone(), p).unwrap();

    group.bench_function("hero_graph_512", |b| {
        b.iter(|| {
            hero.simulate(PipelineOptions::new(1024).batch_size(512).streams(4))
                .unwrap()
        })
    });
    group.bench_function("hero_stream_512", |b| {
        b.iter(|| {
            hero_stream
                .simulate(PipelineOptions::new(1024).batch_size(512).streams(4))
                .unwrap()
        })
    });
    group.bench_function("baseline_per_message", |b| {
        b.iter(|| {
            baseline
                .simulate(PipelineOptions::new(1024).batch_size(1).streams(128))
                .unwrap()
        })
    });
    group.finish();

    let mut sweep = c.benchmark_group("fig13_batch_sweep");
    for bs in [16u32, 64, 256, 1024] {
        sweep.bench_with_input(BenchmarkId::from_parameter(bs), &bs, |b, &bs| {
            b.iter(|| {
                hero.simulate(PipelineOptions::new(1024).batch_size(bs).streams(8))
                    .unwrap()
            })
        });
    }
    sweep.finish();
}

fn bench_engine_construction(c: &mut Criterion) {
    let device = rtx_4090();
    c.bench_function("hero_engine_new_with_tuning_and_selection", |b| {
        b.iter(|| HeroSigner::hero(device.clone(), Params::sphincs_128f()).unwrap())
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pipeline, bench_engine_construction
);
criterion_main!(benches);
