//! Criterion benches over the per-kernel simulation pipeline (the Table
//! VIII machinery): descriptor construction + timing model + bank-conflict
//! measurement, baseline vs HERO, per parameter set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hero_gpu_sim::device::rtx_4090;
use hero_sign::engine::HeroSigner;
use hero_sphincs::params::Params;

fn bench_kernel_simulation(c: &mut Criterion) {
    let device = rtx_4090();
    let mut group = c.benchmark_group("table8_kernel_reports");
    for p in Params::fast_sets() {
        let baseline = HeroSigner::baseline(device.clone(), p).unwrap();
        let hero = HeroSigner::hero(device.clone(), p).unwrap();
        group.bench_with_input(BenchmarkId::new("baseline", p.name()), &baseline, |b, e| {
            b.iter(|| e.kernel_reports(1024))
        });
        group.bench_with_input(BenchmarkId::new("hero", p.name()), &hero, |b, e| {
            b.iter(|| e.kernel_reports(1024))
        });
    }
    group.finish();
}

fn bench_tuning_search(c: &mut Criterion) {
    let device = rtx_4090();
    let mut group = c.benchmark_group("algorithm1_tree_tuning");
    for p in Params::fast_sets() {
        group.bench_with_input(BenchmarkId::from_parameter(p.name()), &p, |b, p| {
            b.iter(|| hero_sign::tuning::tune_auto(&device, p, &Default::default()))
        });
    }
    group.finish();
}

fn bench_bank_measurement(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6_bank_measurement");
    let device = rtx_4090();
    for p in Params::fast_sets() {
        let engine = HeroSigner::hero(device.clone(), p).unwrap();
        let geometry = engine.fors_layout().geometry(&p);
        group.bench_with_input(BenchmarkId::from_parameter(p.name()), &p, |b, p| {
            b.iter(|| {
                hero_sign::kernels::fors_sign::measure_reduction(
                    p,
                    &geometry,
                    hero_gpu_sim::banks::PaddingScheme::for_width(p.n),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernel_simulation, bench_tuning_search, bench_bank_measurement
);
criterion_main!(benches);
