//! Criterion benches of the real cryptographic substrate: SHA-256
//! compression throughput, tweakable-hash calls, WOTS+ chains, FORS
//! trees, and full (reduced-parameter) signatures — the Table X raw
//! material.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hero_sphincs::address::Address;
use hero_sphincs::hash::HashCtx;
use hero_sphincs::params::Params;
use hero_sphincs::sha256::Sha256;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_params() -> Params {
    let mut p = Params::sphincs_128f();
    p.h = 6;
    p.d = 3;
    p.log_t = 4;
    p.k = 8;
    p
}

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    let block = [0u8; 4096];
    group.throughput(Throughput::Bytes(block.len() as u64));
    group.bench_function("digest_4k", |b| b.iter(|| Sha256::digest(&block)));
    group.finish();
}

fn bench_tweakable_hashes(c: &mut Criterion) {
    let params = Params::sphincs_128f();
    let ctx = HashCtx::new(params, &[7u8; 16]);
    let adrs = Address::new();
    let m = [3u8; 16];
    c.bench_function("hash_f_single_compression", |b| b.iter(|| ctx.f(&adrs, &m)));
    c.bench_function("hash_h_two_to_one", |b| b.iter(|| ctx.h(&adrs, &m, &m)));
}

fn bench_wots_chain(c: &mut Criterion) {
    let params = Params::sphincs_128f();
    let ctx = HashCtx::new(params, &[7u8; 16]);
    let x = vec![5u8; 16];
    c.bench_function("wots_chain_w15", |b| {
        b.iter(|| {
            let mut adrs = Address::new();
            hero_sphincs::wots::chain(&ctx, &x, 0, 15, &mut adrs)
        })
    });
}

fn bench_fors_tree(c: &mut Criterion) {
    let params = tiny_params();
    let ctx = HashCtx::new(params, &[7u8; 16]);
    let sk_seed = vec![2u8; 16];
    let adrs = Address::new();
    c.bench_function("fors_tree_hash_16_leaves", |b| {
        b.iter(|| hero_sphincs::fors::tree_hash(&ctx, &sk_seed, &adrs, 0, 3))
    });
}

fn bench_full_sign_verify(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let (sk, vk) = hero_sphincs::keygen(tiny_params(), &mut rng).expect("keygen");
    let sig = sk.sign(b"bench message");
    c.bench_function("sign_reduced_params", |b| {
        b.iter(|| sk.sign(b"bench message"))
    });
    c.bench_function("verify_reduced_params", |b| {
        b.iter(|| vk.verify(b"bench message", &sig).expect("valid"))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sha256, bench_tweakable_hashes, bench_wots_chain, bench_fors_tree, bench_full_sign_verify
);
criterion_main!(benches);
