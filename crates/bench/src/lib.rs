//! Shared infrastructure for the experiment harness: the paper's
//! published numbers (for side-by-side comparison), external reference
//! data (FPGA/ASIC/AVX2 comparators), and table formatting.

pub mod baseline;
pub mod paper;
pub mod reference;

use hero_sphincs::params::Params;

/// The paper's primary evaluation platform.
pub fn primary_device() -> hero_gpu_sim::DeviceProps {
    hero_gpu_sim::device::rtx_4090()
}

/// The three parameter sets of the evaluation.
pub fn eval_sets() -> [Params; 3] {
    Params::fast_sets()
}

/// Messages per run, matching the paper's Block = 1024 batches.
pub const EVAL_MESSAGES: u32 = 1024;

/// Renders a ratio as `x.xx×`.
pub fn fmt_x(ratio: f64) -> String {
    format!("{ratio:.2}x")
}

/// Prints a horizontal rule sized for the standard table width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Prints a titled header for an experiment output.
pub fn header(id: &str, caption: &str) {
    println!();
    rule(78);
    println!("{id}: {caption}");
    rule(78);
}

/// A paper-vs-measured comparison line.
pub fn compare_line(label: &str, paper: f64, measured: f64, unit: &str) {
    let ratio = if paper != 0.0 {
        measured / paper
    } else {
        f64::NAN
    };
    println!(
        "  {label:<34} paper {paper:>10.2} {unit:<6} ours {measured:>10.2} {unit:<6} (x{ratio:.2} of paper)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_x(2.136), "2.14x");
    }

    #[test]
    fn eval_surface() {
        assert_eq!(eval_sets().len(), 3);
        assert_eq!(primary_device().name, "RTX 4090");
    }
}
