//! Ablation of the reproduction's own design choices in the Auto Tree
//! Tuning search (DESIGN.md §5): the tune factor `α` and the candidate-
//! ranking priority. Shows *why* α = 0.6 and sync-first ranking are the
//! settings under which Algorithm 1 reproduces Table IV — and what each
//! alternative would have picked instead, with its simulated cost.

use hero_bench::{header, primary_device, rule};
use hero_gpu_sim::engine::simulate_kernel;
use hero_gpu_sim::isa::Sha2Path;
use hero_sign::kernels::fors_sign::{describe, ForsLayout};
use hero_sign::kernels::KernelConfig;
use hero_sign::tuning::{tune, FusionCandidate, TuningOptions};
use hero_sphincs::params::Params;

fn simulated_kops(params: &Params, candidate: FusionCandidate) -> f64 {
    let device = primary_device();
    let layout = if candidate.relax_depth > 0 {
        ForsLayout::Relax(candidate)
    } else {
        ForsLayout::Fused(candidate)
    };
    let desc = describe(
        &device,
        params,
        1024,
        &layout,
        &KernelConfig::hero(Sha2Path::Ptx),
    );
    let report = simulate_kernel(&device, &desc);
    1024.0 / report.time_us * 1.0e3
}

fn main() {
    let device = primary_device();

    header(
        "Ablation: tune factor α",
        "Winner of Algorithm 1 as α varies (RTX 4090; paper row = α 0.6)",
    );
    println!(
        "{:<16} {:>6} {:>8} {:>8} {:>4} {:>8} {:>8} {:>10}",
        "Set", "alpha", "T_set", "N_tree", "F", "U_T", "sync", "sim KOPS"
    );
    rule(76);
    for p in [Params::sphincs_128f(), Params::sphincs_192f()] {
        for alpha in [0.3, 0.5, 0.6, 0.75, 0.9] {
            let opts = TuningOptions {
                alpha,
                ..TuningOptions::default()
            };
            match tune(&device, &p, &opts) {
                Ok(r) => {
                    let b = r.best;
                    println!(
                        "{:<16} {:>6.2} {:>8} {:>8} {:>4} {:>8.3} {:>8.1} {:>10.1}",
                        p.name(),
                        alpha,
                        b.threads_per_set,
                        b.trees_per_set,
                        b.fused_sets,
                        b.thread_utilization,
                        b.sync_points,
                        simulated_kops(&p, b),
                    );
                }
                Err(e) => println!("{:<16} {:>6.2} (no candidate: {e})", p.name(), alpha),
            }
        }
        rule(76);
    }
    println!("Low α admits half-empty blocks whose extra Set rounds look good on the");
    println!("sync metric but lose simulated throughput; high α can empty the candidate");
    println!("set. α = 0.6 is where the argmin lands on the paper's Table IV winners.");

    header(
        "Ablation: ranking priority",
        "argmin(sync, -U_T, -U_S) vs utilization-first ranking",
    );
    println!(
        "{:<16} {:<22} {:>8} {:>4} {:>8} {:>10}",
        "Set", "Priority", "T_set", "F", "sync", "sim KOPS"
    );
    rule(74);
    for p in [Params::sphincs_128f(), Params::sphincs_192f()] {
        let r = tune(&device, &p, &TuningOptions::default()).expect("search");
        // Paper's priority: candidates[0].
        let paper_pick = r.candidates[0];
        // Alternative: maximize thread utilization first.
        let util_pick = *r
            .candidates
            .iter()
            .max_by(|a, b| {
                a.thread_utilization
                    .partial_cmp(&b.thread_utilization)
                    .unwrap()
                    .then(b.sync_points.partial_cmp(&a.sync_points).unwrap())
            })
            .expect("candidates");
        for (label, c) in [
            ("sync-first (paper)", paper_pick),
            ("utilization-first", util_pick),
        ] {
            println!(
                "{:<16} {:<22} {:>8} {:>4} {:>8.1} {:>10.1}",
                p.name(),
                label,
                c.threads_per_set,
                c.fused_sets,
                c.sync_points,
                simulated_kops(&p, c),
            );
        }
        rule(74);
    }
    println!("The sync-first argmin (Algorithm 1 line 25) never loses to the");
    println!("utilization-first alternative in simulated throughput — fewer");
    println!("synchronization walls beat fuller blocks, the paper's stated heuristic.");
}
