//! Verification-path bench: scalar vs lane-batched vs planned.
//!
//! Measures the same workload — verifying a batch of signatures against
//! one verifying key — three ways, at batch sizes 1/8/64:
//!
//! * **scalar** — `VerifyingKey::verify` looped one signature at a
//!   time: the reference path, every hash sequential.
//! * **lane-batched** — `VerifyingKey::verify_many`: signatures march
//!   through FORS / WOTS+ / XMSS levels together so each level's hashes
//!   go through the multi-lane `f_many`/`thash_many` cores.
//! * **planned** — `HeroSigner::verify_batch`: the same lane batching,
//!   but planned as a cross-signature stage DAG on the persistent
//!   executor, so independent per-signature stages also run across
//!   worker threads.
//!
//! A fourth leg runs the mixed sign+verify service: equal numbers of
//! sign and verify clients sharing one `SignService`, each lane
//! coalescing independently on the shared engine.
//!
//! Results go to `BENCH_verify.json`. Three gates fail the process (CI
//! runs `--smoke`):
//!
//! 1. lane-batched must not be slower than scalar at batch 8;
//! 2. planned must not be slower than lane-batched at batch 64
//!    (otherwise the stage DAG is pure overhead);
//! 3. planned must reach >= 1.5x the scalar rate at batch 64 — the
//!    headline batched-verification speedup.
//!
//! Gates 2 and 3 need real hardware parallelism: on a host with one
//! hardware thread `plan::verify_batch` intentionally degrades to the
//! inline full-width lane pipeline, so gate 2 becomes equality up to
//! timer noise (0.95) and gate 3 becomes the lane-amortization win
//! alone (1.1x). The JSON records which thresholds applied.
//!
//! ```text
//! bench_verify [--smoke] [--iters N] [--workers W] [--out PATH]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use hero_gpu_sim::device::rtx_4090;
use hero_sign::service::{ServiceConfig, SignService};
use hero_sign::{HeroSigner, VerifyOutcome};
use hero_sphincs::params::Params;
use hero_sphincs::sign::{keygen_from_seeds, Signature};

struct Leg {
    batch: usize,
    scalar: f64,
    lane_batched: f64,
    planned: f64,
    lane_vs_scalar: f64,
    planned_vs_lane: f64,
    planned_vs_scalar: f64,
}

fn msg(i: usize) -> Vec<u8> {
    format!("verify bench msg {i}").into_bytes()
}

/// Best rate (verifies/sec) over `iters` runs of `work` covering
/// `total` verifications.
fn best_rate(iters: usize, total: usize, mut work: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        work();
        best = best.min(start.elapsed().as_secs_f64());
    }
    total as f64 / best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_verify.json".to_string());
    // Default 8 (the bench_batch/bench_service convention): characterize
    // the runtime at a production-ish pool size regardless of the CI
    // box's core count.
    let workers: usize = flag("--workers").and_then(|v| v.parse().ok()).unwrap_or(8);
    let iters: usize = flag("--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 3 } else { 5 });
    // Repeat small batches so every leg times a comparable amount of
    // work and single-run jitter doesn't swamp the gate ratios.
    let rep_budget: usize = if smoke { 256 } else { 768 };

    // Reduced shape, same rationale as bench_service: the batching story
    // is about amortizing per-signature stage costs, visible in seconds
    // on a shape whose full-set hash work doesn't dominate the clock.
    let mut params = Params::sphincs_128f();
    params.h = 6;
    params.d = 3;
    params.log_t = if smoke { 4 } else { 6 };
    params.k = 8;
    let params_label = format!(
        "{} (reduced verify shape, log_t={})",
        params.name(),
        params.log_t
    );

    let n = params.n;
    let (sk, vk) = keygen_from_seeds(
        params,
        (0..n as u8).collect(),
        (50..50 + n as u8).collect(),
        (100..100 + n as u8).collect(),
    );
    let engine = Arc::new(
        HeroSigner::builder(rtx_4090(), params)
            .workers(workers)
            .build()
            .expect("engine builds"),
    );

    // Fixtures: one signed message per slot of the largest batch, with
    // every eighth signature tampered so verdict plumbing (not just the
    // all-valid fast path) is inside the timed region.
    let max_batch = 64usize;
    let msgs: Vec<Vec<u8>> = (0..max_batch).map(msg).collect();
    let mut sigs: Vec<Signature> = msgs.iter().map(|m| sk.sign(m)).collect();
    let expected: Vec<VerifyOutcome> = (0..max_batch)
        .map(|i| {
            if i % 8 == 3 {
                sigs[i].randomizer[0] ^= 1;
                VerifyOutcome::Invalid
            } else {
                VerifyOutcome::Valid
            }
        })
        .collect();
    let msg_refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
    let sig_refs: Vec<&Signature> = sigs.iter().collect();

    // Correctness gate before any timing: all three paths agree with
    // the expected verdicts, tampered slots included.
    {
        let scalar: Vec<VerifyOutcome> = (0..max_batch)
            .map(|i| VerifyOutcome::from_result(vk.verify(&msgs[i], &sigs[i])))
            .collect();
        assert_eq!(scalar, expected, "scalar verdicts diverged");
        let lane: Vec<VerifyOutcome> = vk
            .verify_many(&msg_refs, &sig_refs)
            .into_iter()
            .map(VerifyOutcome::from_result)
            .collect();
        assert_eq!(lane, expected, "lane-batched verdicts diverged");
        let planned = engine
            .verify_batch(&vk, &msg_refs, &sigs)
            .expect("planned verify");
        assert_eq!(planned, expected, "planned verdicts diverged");
    }

    println!("bench_verify: {params_label}, {workers} workers, {iters} iters");

    let batch_sizes: &[usize] = &[1, 8, 64];
    let mut legs: Vec<Leg> = Vec::new();
    for &batch in batch_sizes {
        let reps = (rep_budget / batch).max(1);
        let total = batch * reps;
        let (m, s, sr) = (&msg_refs[..batch], &sigs[..batch], &sig_refs[..batch]);

        let scalar_rate = best_rate(iters, total, || {
            for _ in 0..reps {
                for i in 0..batch {
                    let _ = vk.verify(m[i], &s[i]);
                }
            }
        });
        let lane_rate = best_rate(iters, total, || {
            for _ in 0..reps {
                let verdicts = vk.verify_many(m, sr);
                assert_eq!(verdicts.len(), batch);
            }
        });
        let planned_rate = best_rate(iters, total, || {
            for _ in 0..reps {
                let verdicts = engine.verify_batch(&vk, m, s).expect("planned verify");
                assert_eq!(verdicts.len(), batch);
            }
        });

        let leg = Leg {
            batch,
            scalar: scalar_rate,
            lane_batched: lane_rate,
            planned: planned_rate,
            lane_vs_scalar: lane_rate / scalar_rate,
            planned_vs_lane: planned_rate / lane_rate,
            planned_vs_scalar: planned_rate / scalar_rate,
        };
        println!(
            "  batch {batch:>3}: scalar {scalar_rate:>9.1} | lane {lane_rate:>9.1} | \
             planned {planned_rate:>9.1} verifies/s | lane vs scalar {:>5.2}x | \
             planned vs scalar {:>5.2}x",
            leg.lane_vs_scalar, leg.planned_vs_scalar
        );
        legs.push(leg);
    }

    // Mixed service leg: equal sign and verify client counts sharing one
    // service; both lanes coalesce independently on the shared engine.
    let mixed_clients = 4usize;
    let per_client = if smoke { 4 } else { 16 };
    let mixed_total = 2 * mixed_clients * per_client;
    let mixed_rate = best_rate(iters, mixed_total, || {
        let service = SignService::start(
            engine.clone(),
            sk.clone(),
            ServiceConfig {
                max_batch: 64,
                max_wait: Duration::from_micros(500),
                queue_depth: 1024,
            },
        )
        .expect("service starts");
        std::thread::scope(|scope| {
            for c in 0..mixed_clients {
                let sign_service = &service;
                scope.spawn(move || {
                    let tickets: Vec<_> = (0..per_client)
                        .map(|i| {
                            sign_service
                                .submit(msg(1000 + c * per_client + i))
                                .expect("accepted")
                        })
                        .collect();
                    for t in tickets {
                        t.wait().expect("signed");
                    }
                });
                let (verify_service, msgs, sigs, expected) = (&service, &msgs, &sigs, &expected);
                scope.spawn(move || {
                    let tickets: Vec<_> = (0..per_client)
                        .map(|i| {
                            let slot = (c * per_client + i) % msgs.len();
                            verify_service
                                .submit_verify(msgs[slot].clone(), sigs[slot].clone())
                                .expect("accepted")
                        })
                        .collect();
                    for (i, t) in tickets.into_iter().enumerate() {
                        let slot = (c * per_client + i) % msgs.len();
                        assert_eq!(t.wait().expect("verified"), expected[slot]);
                    }
                });
            }
        });
        service.shutdown();
    });
    println!("  mixed service ({mixed_clients}+{mixed_clients} clients): {mixed_rate:>9.1} ops/s");

    // Host-aware thresholds: the planner's scheduling win needs real
    // hardware parallelism. On a single-hardware-thread host
    // `plan::verify_batch` intentionally degrades to the inline
    // full-width lane pipeline, so "planned vs lane" is equality up to
    // timer noise and the achievable speedup over scalar is the lane
    // amortization win alone.
    let host_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let parallel_host = host_threads > 1 && workers > 1;
    let (planned_vs_lane_min, speedup_min) = if parallel_host {
        (1.0, 1.5)
    } else {
        (0.95, 1.1)
    };

    let at = |b: usize| legs.iter().find(|l| l.batch == b).expect("leg exists");
    let gate_lane = at(8).lane_vs_scalar >= 1.0;
    let gate_planned_vs_lane = at(64).planned_vs_lane >= planned_vs_lane_min;
    let gate_speedup = at(64).planned_vs_scalar >= speedup_min;

    let legs_json: Vec<String> = legs
        .iter()
        .map(|l| {
            format!(
                "    {{\n      \"batch\": {},\n      \"scalar_verifies_per_sec\": {:.3},\n      \
                 \"lane_batched_verifies_per_sec\": {:.3},\n      \
                 \"planned_verifies_per_sec\": {:.3},\n      \
                 \"lane_vs_scalar\": {:.3},\n      \
                 \"planned_vs_lane\": {:.3},\n      \
                 \"planned_vs_scalar\": {:.3}\n    }}",
                l.batch,
                l.scalar,
                l.lane_batched,
                l.planned,
                l.lane_vs_scalar,
                l.planned_vs_lane,
                l.planned_vs_scalar
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"verify\",\n  \"params\": \"{}\",\n  \"smoke\": {},\n  \
         \"workers\": {},\n  \"host_threads\": {},\n  \
         \"verdicts_agree_across_paths\": true,\n  \
         \"mixed_service_ops_per_sec\": {:.3},\n  \"legs\": [\n{}\n  ],\n  \
         \"gates\": {{\n    \"lane_batched_not_slower_than_scalar_at_8\": {},\n    \
         \"planned_vs_lane_batched_at_64_min\": {:.2},\n    \
         \"planned_not_slower_than_lane_batched_at_64\": {},\n    \
         \"planned_vs_scalar_at_64_min\": {:.2},\n    \
         \"planned_speedup_over_scalar_at_64\": {}\n  }}\n}}\n",
        params_label,
        smoke,
        workers,
        host_threads,
        mixed_rate,
        legs_json.join(",\n"),
        gate_lane,
        planned_vs_lane_min,
        gate_planned_vs_lane,
        speedup_min,
        gate_speedup,
    );
    std::fs::write(&out_path, json).expect("write bench json");
    println!("  wrote {out_path}");

    if !gate_lane {
        eprintln!("GATE FAILED: lane-batched verify slower than scalar at batch 8");
        std::process::exit(1);
    }
    if !gate_planned_vs_lane {
        eprintln!(
            "GATE FAILED: planned verify below {planned_vs_lane_min:.2}x lane-batched at batch 64"
        );
        std::process::exit(1);
    }
    if !gate_speedup {
        eprintln!("GATE FAILED: planned verify below {speedup_min:.2}x scalar at batch 64");
        std::process::exit(1);
    }
}
