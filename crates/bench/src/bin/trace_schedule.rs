//! Dumps the simulated Fig. 12 schedules as Chrome Trace Event JSON
//! (load in `chrome://tracing` or <https://ui.perfetto.dev>) — the
//! repository's stand-in for an Nsight Systems timeline view.
//!
//! ```sh
//! cargo run --release -p hero-bench --bin trace_schedule
//! # writes hero_baseline_trace.json and hero_graph_trace.json
//! ```

use hero_bench::primary_device;
use hero_gpu_sim::trace::chrome_trace;
use hero_sign::engine::{HeroSigner, PipelineOptions};
use hero_sphincs::params::Params;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = primary_device();
    let params = Params::sphincs_128f();

    let baseline = HeroSigner::baseline(device.clone(), params).unwrap();
    // 64 messages keep the trace readable; per-message kernels on many
    // streams, the baseline's submission pattern.
    let (base_report, base_tl) = baseline
        .simulate_traced(PipelineOptions::new(64).batch_size(1).streams(16))
        .unwrap();
    std::fs::write("hero_baseline_trace.json", chrome_trace(&base_tl))?;

    let hero = HeroSigner::hero(device, params).unwrap();
    let (hero_report, hero_tl) = hero
        .simulate_traced(PipelineOptions::new(1024).batch_size(256).streams(4))
        .unwrap();
    std::fs::write("hero_graph_trace.json", chrome_trace(&hero_tl))?;

    println!(
        "wrote hero_baseline_trace.json ({} kernels, makespan {:.1} us)",
        base_tl.executed().len(),
        base_report.makespan_us
    );
    println!(
        "wrote hero_graph_trace.json ({} kernels, makespan {:.1} us)",
        hero_tl.executed().len(),
        hero_report.makespan_us
    );
    println!("open either file in chrome://tracing or https://ui.perfetto.dev");
    Ok(())
}
