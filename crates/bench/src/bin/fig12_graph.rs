//! Regenerates **Figure 12**: full-pipeline throughput (KOPS) and kernel
//! launch latency (µs) under four configurations — Baseline (no graph),
//! Baseline (with graph), HERO-Sign (no graph), HERO-Sign (with graph) —
//! on the RTX 4090 with 1024 messages.
//!
//! Batching follows the paper's guidance: the baseline submits
//! per-message kernels over many streams (CUSPX-style), HERO signs
//! ≥512-message batches (§IV-E1) bound to a few non-blocking streams.

use hero_bench::{fmt_x, header, paper, primary_device, rule};
use hero_sign::engine::{HeroSigner, OptConfig, PipelineOptions, PipelineReport};
use hero_sphincs::params::Params;

const MESSAGES: u32 = 1024;

fn run(
    device: &hero_gpu_sim::DeviceProps,
    p: Params,
    mut cfg: OptConfig,
    graph: bool,
) -> PipelineReport {
    cfg.graph = graph;
    let engine = HeroSigner::builder(device.clone(), p)
        .config(cfg)
        .build()
        .unwrap();
    if cfg.mmtp {
        engine
            .simulate(PipelineOptions::new(MESSAGES).batch_size(512).streams(4))
            .unwrap()
    } else {
        // Baseline: per-message kernels, streams ≈ tasks/cores (CUSPX).
        engine
            .simulate(PipelineOptions::new(MESSAGES).batch_size(1).streams(128))
            .unwrap()
    }
}

fn main() {
    let device = primary_device();
    header(
        "Figure 12",
        "Pipeline KOPS and launch latency: baseline vs HERO-Sign, ±CUDA Graph (1024 msgs)",
    );

    for (i, p) in Params::fast_sets().iter().enumerate() {
        let base_ng = run(&device, *p, OptConfig::baseline(), false);
        let base_g = run(&device, *p, OptConfig::baseline(), true);
        let hero_ng = run(&device, *p, OptConfig::hero(), false);
        let hero_g = run(&device, *p, OptConfig::hero(), true);

        println!("\n{}:", p.name());
        println!(
            "  {:<24} {:>9} {:>9}   paper: {:>8} KOPS",
            "Config", "KOPS", "Speedup", ""
        );
        rule(72);
        let rows = [
            ("Baseline (no Graph)", &base_ng, paper::FIG12_KOPS[i][0]),
            ("Baseline (with Graph)", &base_g, paper::FIG12_KOPS[i][1]),
            ("HERO-Sign (no Graph)", &hero_ng, paper::FIG12_KOPS[i][2]),
            ("HERO-Sign (with Graph)", &hero_g, paper::FIG12_KOPS[i][3]),
        ];
        for (label, report, paper_kops) in rows {
            println!(
                "  {:<24} {:>9.2} {:>9}   paper: {:>8.2} KOPS",
                label,
                report.kops,
                fmt_x(report.kops / base_ng.kops),
                paper_kops,
            );
        }

        println!("  launch latency (cumulative host overhead):");
        let lat = [
            (
                "Baseline",
                base_ng.launch_overhead_us,
                paper::FIG12_LATENCY_US[i][0],
            ),
            (
                "HERO-Sign (no Graph)",
                hero_ng.launch_overhead_us,
                paper::FIG12_LATENCY_US[i][1],
            ),
            (
                "HERO-Sign (with Graph)",
                hero_g.launch_overhead_us,
                paper::FIG12_LATENCY_US[i][2],
            ),
        ];
        for (label, us, paper_us) in lat {
            println!(
                "    {:<24} {:>10.2} us  reduction {:>7}   paper: {:>8.2} us",
                label,
                us,
                fmt_x(base_ng.launch_overhead_us / us),
                paper_us,
            );
        }
        println!(
            "    idle time: baseline {:.1} us, HERO+graph {:.1} us",
            base_ng.idle_us, hero_g.idle_us
        );
    }
    println!();
    println!("Shape checks: graph execution is always fastest; launch-latency drops by");
    println!("two orders of magnitude (paper: 86x-221x); idle time shrinks under HERO.");
}
