//! Regenerates **Table III**: warp occupancy, theoretical occupancy
//! (Eq. 1) and registers per thread for the baseline's three kernels
//! under SPHINCS+-128f on the RTX 4090.

use hero_bench::{header, paper, primary_device, rule, EVAL_MESSAGES};
use hero_sign::engine::HeroSigner;
use hero_sphincs::params::Params;

fn main() {
    let device = primary_device();
    let p = Params::sphincs_128f();
    let engine = HeroSigner::baseline(device, p).unwrap();
    let reports = engine.kernel_reports(EVAL_MESSAGES);
    let descs = engine.kernel_descs(EVAL_MESSAGES);

    header(
        "Table III",
        "Baseline (TCAS-SPHINCSp) kernel profile, SPHINCS+-128f, RTX 4090",
    );
    println!(
        "{:<14} {:>10} {:>13} {:>10} | paper: {:>7} {:>9} {:>6}",
        "Kernel", "WarpOcc%", "TheoryOcc%", "Regs/Thr", "Warp%", "Theory%", "Regs"
    );
    rule(92);
    for (i, (r, d)) in reports.iter().zip(descs.iter()).enumerate() {
        let (pw, pt, pr) = paper::TABLE3[i];
        println!(
            "{:<14} {:>10.2} {:>13.2} {:>10} | paper: {:>7.2} {:>9.2} {:>6}",
            r.name,
            r.achieved_occupancy * 100.0,
            r.theoretical_occupancy * 100.0,
            d.block.regs_per_thread,
            pw,
            pt,
            pr,
        );
    }
    println!();
    println!("The FORS gap (theoretical >> achieved) is the under-utilization that");
    println!("motivates FORS Fusion (§III-B2); TREE_Sign is register-bound.");
}
