//! Batch-planner trajectory bench: looped `sign` vs planned `sign_batch`.
//!
//! For each batch size, measures signing the same messages two ways on
//! the same engine and worker pool:
//!
//! * **looped** — `N × HeroSigner::sign`, i.e. N planned batches of one:
//!   every message pays its own stage-graph fill/drain and the pool
//!   idles at each message's small stages.
//! * **planned** — one `HeroSigner::sign_batch` over all N: a single
//!   cross-message stage graph keeps the ready queue and SHA lanes full
//!   across message boundaries.
//!
//! Results (msgs/sec per path, speedup, planner node census) go to
//! `BENCH_batch.json` so future PRs have a cross-message baseline.
//! Signatures from both paths are asserted byte-identical before any
//! timing is reported.
//!
//! ```text
//! bench_batch [--smoke] [--iters N] [--workers W] [--out PATH]
//! ```
//!
//! `--smoke` runs reduced parameters and small batches (CI keeps the
//! bench runnable without paying full-parameter signing time).

use std::time::Instant;

use hero_gpu_sim::device::rtx_4090;
use hero_sign::plan::{summarize, PlanShape};
use hero_sign::HeroSigner;
use hero_sphincs::params::Params;
use hero_sphincs::sign::keygen_from_seeds;

struct SizeResult {
    batch: usize,
    looped_msgs_per_sec: f64,
    planned_msgs_per_sec: f64,
    speedup: f64,
    plan_nodes: usize,
}

fn best_of<R>(iters: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..iters {
        let start = Instant::now();
        let out = f();
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("at least one iteration"))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_batch.json".to_string());
    let workers: usize = flag("--workers").and_then(|v| v.parse().ok()).unwrap_or(8);
    let iters: usize = flag("--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1 } else { 3 });

    let params = if smoke {
        let mut p = Params::sphincs_128f();
        p.h = 6;
        p.d = 3;
        p.log_t = 6;
        p.k = 8;
        p
    } else {
        Params::sphincs_128f()
    };
    let batch_sizes: &[usize] = if smoke { &[1, 4, 8] } else { &[1, 8, 64] };
    // Smoke shrinks h/d/log_t/k but params.name() still says 128f; label
    // the artifact so reduced numbers are never read as full-set ones.
    let params_label = if smoke {
        format!("{} (reduced smoke shape)", params.name())
    } else {
        params.name().to_string()
    };

    let n = params.n;
    let (sk, vk) = keygen_from_seeds(
        params,
        (0..n as u8).collect(),
        (50..50 + n as u8).collect(),
        (100..100 + n as u8).collect(),
    );
    let engine = HeroSigner::builder(rtx_4090(), params)
        .workers(workers)
        .build()
        .expect("engine builds");

    println!("bench_batch: {params_label}, {workers} workers, {iters} iters");

    let mut results: Vec<SizeResult> = Vec::new();
    for &batch in batch_sizes {
        let msgs_owned: Vec<Vec<u8>> = (0..batch)
            .map(|i| format!("batch planner message {i}").into_bytes())
            .collect();
        let msgs: Vec<&[u8]> = msgs_owned.iter().map(Vec::as_slice).collect();

        // Correctness gate: planned bytes == looped bytes == valid.
        let planned_sigs = engine.sign_batch(&sk, &msgs).expect("planned batch signs");
        for (msg, sig) in msgs.iter().zip(&planned_sigs) {
            assert_eq!(
                *sig,
                engine.sign(&sk, msg).expect("looped sign"),
                "planned and looped signatures diverged"
            );
            vk.verify(msg, sig).expect("planned signature verifies");
        }

        let (looped_secs, _) = best_of(iters, || {
            let sigs: Vec<_> = msgs
                .iter()
                .map(|m| engine.sign(&sk, m).expect("sign"))
                .collect();
            sigs
        });
        let (planned_secs, _) = best_of(iters, || engine.sign_batch(&sk, &msgs).expect("batch"));

        let looped_rate = batch as f64 / looped_secs;
        let planned_rate = batch as f64 / planned_secs;
        let nodes = summarize(&params, batch, &PlanShape::for_batch(batch)).nodes();
        println!(
            "  batch {batch:>3}: looped {looped_rate:>9.2} msgs/s | planned \
             {planned_rate:>9.2} msgs/s | speedup {:>5.2}x | {nodes} plan nodes",
            planned_rate / looped_rate
        );
        results.push(SizeResult {
            batch,
            looped_msgs_per_sec: looped_rate,
            planned_msgs_per_sec: planned_rate,
            speedup: planned_rate / looped_rate,
            plan_nodes: nodes,
        });
    }

    let sizes_json: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"batch\": {},\n      \"looped_msgs_per_sec\": {:.3},\n      \
                 \"planned_msgs_per_sec\": {:.3},\n      \"speedup\": {:.3},\n      \
                 \"plan_nodes\": {}\n    }}",
                r.batch, r.looped_msgs_per_sec, r.planned_msgs_per_sec, r.speedup, r.plan_nodes
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"batch_planner\",\n  \"params\": \"{}\",\n  \"smoke\": {},\n  \
         \"workers\": {},\n  \"iters\": {},\n  \"signatures_byte_identical\": true,\n  \
         \"sizes\": [\n{}\n  ]\n}}\n",
        params_label,
        smoke,
        workers,
        iters,
        sizes_json.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write bench json");
    println!("  wrote {out_path}");
}
