//! Regenerates **Table IV**: the Auto Tree Tuning search results on the
//! RTX 4090 (shared-memory utilization, thread utilization, fused-set
//! count `F`), plus the full ranked candidate list the paper's
//! profiling-driven final selection consults.

use hero_bench::{header, primary_device, rule};
use hero_sign::tuning::{tune, tune_relax, TuningOptions};
use hero_sphincs::params::Params;

fn main() {
    let device = primary_device();
    let opts = TuningOptions::default();

    header(
        "Table IV",
        "Auto Tree Tuning search results (RTX 4090, static 48 KiB SEME)",
    );
    println!(
        "{:<16} {:>10} {:>10} {:>4} {:>8} {:>8} {:>7}   paper (S_util, T_util, F)",
        "Parameter set", "SmemUtil", "ThrUtil", "F", "T_set", "N_tree", "syncs"
    );
    rule(100);
    for (i, p) in [Params::sphincs_128f(), Params::sphincs_192f()]
        .iter()
        .enumerate()
    {
        let r = tune(&device, p, &opts).expect("search");
        let b = r.best;
        let (ps, pt, pf) = hero_bench::paper::TABLE4[i];
        println!(
            "{:<16} {:>10.4} {:>10.4} {:>4} {:>8} {:>8} {:>7.0}   ({ps}, {pt}, {pf})",
            p.name(),
            b.smem_utilization,
            b.thread_utilization,
            b.fused_sets,
            b.threads_per_set,
            b.trees_per_set,
            b.sync_points,
        );
    }

    println!();
    println!("SPHINCS+-256f (Relax-FORS search, §III-B4):");
    let p256 = Params::sphincs_256f();
    let plain = tune(&device, &p256, &opts).expect("plain search");
    let relax = tune_relax(&device, &p256, &opts).expect("relax search");
    println!(
        "  plain fusion:  {} trees concurrent (degenerate, paper: at most two subtrees)",
        plain.best.concurrent_trees()
    );
    println!(
        "  Relax-FORS:    {} trees concurrent, {} threads/block, {} KiB smem",
        relax.best.concurrent_trees(),
        relax.best.block_threads(),
        relax.best.smem_bytes / 1024,
    );

    println!();
    println!("Top candidates per set (argmin over (sync, -U_T, -U_S)):");
    for p in Params::fast_sets() {
        let r = if p.n == 32 {
            tune_relax(&device, &p, &opts)
        } else {
            tune(&device, &p, &opts)
        };
        let r = r.expect("search");
        println!("  {}:", p.name());
        for c in r.candidates.iter().take(4) {
            println!(
                "    T_set={:<5} N_tree={:<3} F={:<2} U_T={:.4} U_S={:.4} sync={:.1}",
                c.threads_per_set,
                c.trees_per_set,
                c.fused_sets,
                c.thread_utilization,
                c.smem_utilization,
                c.sync_points
            );
        }
    }
}
