//! Regenerates **Table II**: the baseline (TCAS-SPHINCSp) time breakdown
//! — FORS, idle, MSS (TREE), WOTS+ — for a 1024-message batch on the
//! RTX 4090.

use hero_bench::{header, paper, primary_device, rule, EVAL_MESSAGES};
use hero_sign::engine::{HeroSigner, PipelineOptions};
use hero_sphincs::params::Params;

fn main() {
    let device = primary_device();
    header(
        "Table II",
        "Baseline time breakdown (ms) for 1024 messages, RTX 4090",
    );
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8}   paper: {:>7} {:>7} {:>7} {:>7}",
        "Set", "FORS", "Idle", "MSS", "WOTS+", "FORS", "Idle", "MSS", "WOTS+"
    );
    rule(100);
    for (i, p) in Params::fast_sets().iter().enumerate() {
        let engine = HeroSigner::baseline(device.clone(), *p).unwrap();
        let reports = engine.kernel_reports(EVAL_MESSAGES);
        // Idle: measured from the baseline per-message stream schedule.
        let pipeline = engine
            .simulate(
                PipelineOptions::new(EVAL_MESSAGES)
                    .batch_size(1)
                    .streams(128),
            )
            .unwrap();
        let row = &paper::TABLE2[i];
        println!(
            "{:<16} {:>8.2} {:>8.2} {:>8.2} {:>8.2}   paper: {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
            p.name(),
            reports[0].time_us / 1.0e3,
            pipeline.idle_us / 1.0e3,
            reports[1].time_us / 1.0e3,
            reports[2].time_us / 1.0e3,
            row.fors_ms,
            row.idle_ms,
            row.mss_ms,
            row.wots_ms,
        );
    }
    println!();
    println!("Shape checks: MSS dominates, FORS second, WOTS+ light; idle is");
    println!("non-negligible in the baseline's stream schedule.");
}
