//! Regenerates **Figure 14**: baseline vs HERO-Sign across the five
//! non-primary GPU architectures (Pascal → Hopper), with the Tree Tuning
//! search re-run per device using its own shared-memory budget.

use hero_bench::{fmt_x, header, paper, rule};
use hero_gpu_sim::device;
use hero_sign::engine::{HeroSigner, PipelineOptions};
use hero_sphincs::params::Params;

const MESSAGES: u32 = 1024;

fn main() {
    header(
        "Figure 14",
        "Baseline vs HERO-Sign (with graph) across GPU architectures (Block=1024)",
    );

    let devices = [
        device::gtx_1070(),
        device::v100(),
        device::rtx_2080_ti(),
        device::a100(),
        device::h100(),
    ];

    println!(
        "{:<14} {:<16} {:>11} {:>11} {:>9}   paper speedup",
        "Architecture", "Set", "Base KOPS", "HERO KOPS", "Speedup"
    );
    rule(86);
    let mut hopper_256 = 0.0;
    let mut pascal_mean = 0.0;
    for (di, d) in devices.iter().enumerate() {
        for (pi, p) in Params::fast_sets().iter().enumerate() {
            let base = HeroSigner::baseline(d.clone(), *p)
                .unwrap()
                .simulate(
                    PipelineOptions::new(MESSAGES)
                        .batch_size(1)
                        .streams(d.sm_count as usize),
                )
                .unwrap();
            let hero = HeroSigner::hero(d.clone(), *p)
                .unwrap()
                .simulate(PipelineOptions::new(MESSAGES).batch_size(512).streams(4))
                .unwrap();
            let speedup = hero.kops / base.kops;
            println!(
                "{:<14} {:<16} {:>11.2} {:>11.2} {:>9}   {:.2}x",
                if pi == 0 {
                    format!("{}", d.arch)
                } else {
                    String::new()
                },
                p.name(),
                base.kops,
                hero.kops,
                fmt_x(speedup),
                paper::FIG14_SPEEDUP[di][pi],
            );
            if d.arch == hero_gpu_sim::device::Arch::Hopper && p.n == 32 {
                hopper_256 = speedup;
            }
            if d.arch == hero_gpu_sim::device::Arch::Pascal {
                pascal_mean += speedup / 3.0;
            }
        }
    }

    println!();
    // RTX 4090 absolute-performance cross-check (§IV-F).
    let p256 = Params::sphincs_256f();
    let ada = HeroSigner::hero(device::rtx_4090(), p256)
        .unwrap()
        .simulate(PipelineOptions::new(MESSAGES).batch_size(512).streams(4))
        .unwrap();
    let hopper = HeroSigner::hero(device::h100(), p256)
        .unwrap()
        .simulate(PipelineOptions::new(MESSAGES).batch_size(512).streams(4))
        .unwrap();
    println!(
        "256f absolute: RTX 4090 {:.2} KOPS vs H100 {:.2} KOPS (paper measured 33.88 vs \
         26.63; the paper's own throughput ∝ cores x base-clock law predicts \
         33.88 x (16896x1035)/(16384x2235) = 16.2 for H100 — our simulator follows the \
         law; silicon H100 evidently boosted above base clock).",
        ada.kops, hopper.kops
    );
    println!(
        "Shape checks: HERO wins on every architecture (ours 1.05-1.64x, paper \
         1.15-1.88x); Hopper posts the largest absolute HERO throughput among the \
         non-Ada parts (its 227 KB dynamic smem admits the deepest fusion, §IV-F); \
         RTX 4090 stays fastest overall. Pascal mean {:.2}x, Hopper 256f {:.2}x.",
        pascal_mean, hopper_256
    );
}
