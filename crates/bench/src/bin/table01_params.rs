//! Regenerates **Table I**: the SPHINCS+ `-f` parameter sets, plus the
//! derived quantities the paper quotes in the text (signature sizes,
//! leaf counts, per-leaf hash work).

use hero_bench::{header, rule};
use hero_sign::workload;
use hero_sphincs::params::Params;

fn main() {
    header(
        "Table I",
        "SPHINCS+ -f parameter sets and derived quantities",
    );
    println!(
        "{:<16} {:>3} {:>3} {:>3} {:>7} {:>3} {:>3} | {:>9} {:>10} {:>10} {:>10}",
        "Scheme",
        "n",
        "h",
        "d",
        "log(t)",
        "k",
        "w",
        "sig bytes",
        "FORS lvs",
        "HT leaves",
        "hash/leaf"
    );
    rule(104);
    for p in Params::fast_sets() {
        println!(
            "{:<16} {:>3} {:>3} {:>3} {:>7} {:>3} {:>3} | {:>9} {:>10} {:>10} {:>10}",
            p.name(),
            p.n,
            p.h,
            p.d,
            p.log_t,
            p.k,
            p.w,
            p.sig_bytes(),
            p.fors_total_leaves(),
            p.hypertree_total_leaves(),
            workload::wots_gen_leaf_chain_hashes(&p),
        );
    }
    println!();
    println!("Checks against the paper's text:");
    println!(
        "  128f signature bytes = {} (paper: 17,088)",
        Params::sphincs_128f().sig_bytes()
    );
    println!(
        "  wots_gen_leaf chain hashes = {}/{}/{} (paper: 560/816/1072)",
        workload::wots_gen_leaf_chain_hashes(&Params::sphincs_128f()),
        workload::wots_gen_leaf_chain_hashes(&Params::sphincs_192f()),
        workload::wots_gen_leaf_chain_hashes(&Params::sphincs_256f()),
    );
    println!(
        "  total compressions per signature (128f) = {} (paper: >100,000 hashes)",
        workload::total_sign_compressions(&Params::sphincs_128f())
    );
}
