//! Regenerates **Figure 11**: the `FORS_Sign` optimization ladder —
//! Baseline → MMTP → +FS → +PTX → +HybridME → +FreeBank — with step and
//! cumulative speedups for all three parameter sets on the RTX 4090.

use hero_bench::{fmt_x, header, paper, primary_device, rule, EVAL_MESSAGES};
use hero_sign::engine::{HeroSigner, OptConfig};
use hero_sphincs::params::Params;

fn main() {
    let device = primary_device();
    header(
        "Figure 11",
        "FORS_Sign optimization steps (Block=1024): throughput, step & cumulative speedup",
    );

    for (set_idx, p) in Params::fast_sets().iter().enumerate() {
        println!("\n{}:", p.name());
        println!(
            "  {:<12} {:>10} {:>8} {:>8}   paper: {:>8} {:>8} {:>8}",
            "Step", "KOPS", "Step x", "Cumul x", "KOPS", "Step x", "Cumul x"
        );
        rule(86);
        let mut first = f64::NAN;
        let mut prev = f64::NAN;
        let paper_row = paper::FIG11[set_idx];
        for (i, (label, cfg)) in OptConfig::ablation_ladder().into_iter().enumerate() {
            let engine = HeroSigner::builder(device.clone(), *p)
                .config(cfg)
                .build()
                .unwrap();
            let fors = &engine.kernel_reports(EVAL_MESSAGES)[0];
            let kops = EVAL_MESSAGES as f64 / fors.time_us * 1.0e3;
            if i == 0 {
                first = kops;
                prev = kops;
            }
            let label = if i == 2 && p.n == 32 {
                "+FS(Relax)"
            } else {
                label
            };
            let paper_first = paper_row[0];
            let paper_prev = if i == 0 {
                paper_row[0]
            } else {
                paper_row[i - 1]
            };
            println!(
                "  {:<12} {:>10.1} {:>8} {:>8}   paper: {:>8.1} {:>8} {:>8}",
                label,
                kops,
                fmt_x(kops / prev),
                fmt_x(kops / first),
                paper_row[i],
                fmt_x(paper_row[i] / paper_prev),
                fmt_x(paper_row[i] / paper_first),
            );
            prev = kops;
        }
    }
    println!();
    println!("Shape checks: MMTP is the largest step for 128f/192f; the Relax-FORS");
    println!("fusion step is the largest for 256f; FreeBank is the smallest step.");
}
