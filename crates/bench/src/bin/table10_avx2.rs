//! Regenerates **Table X**: CPU performance of SPHINCS+ signing, single
//! thread and multi-threaded, *measured for real* with the `hero-sphincs`
//! reference implementation on this machine — the role the AVX2 rows
//! play in the paper (an honest CPU anchor for the GPU speedups).
//!
//! Our implementation is scalar Rust rather than AVX2 intrinsics, so
//! absolute numbers trail the paper's AVX2 figures; the shape — KOPS far
//! below 1, scaling with threads, 128f > 192f > 256f — is the target.

use hero_bench::{header, reference, rule};
use hero_sign::par;
use hero_sphincs::params::Params;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn measure_kops(params: Params, signatures: usize, threads: usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let (sk, _vk) = hero_sphincs::keygen(params, &mut rng).expect("keygen");
    let start = Instant::now();
    let _sigs = par::par_map_indexed(signatures, threads, |i| {
        let msg = [i as u8; 32];
        sk.sign(&msg)
    });
    let elapsed = start.elapsed().as_secs_f64();
    signatures as f64 / elapsed / 1.0e3
}

fn main() {
    header(
        "Table X",
        "CPU SPHINCS+ signing (measured on this machine, scalar Rust)",
    );
    let threads = par::default_workers().min(16);
    println!("(machine parallelism available to this run: {threads} core(s))");
    println!(
        "{:<16} {:>16} {:>16}   paper AVX2: {:>9} {:>11}",
        "Set",
        "1 thread KOPS",
        &format!("{threads} thr KOPS"),
        "1 thr",
        "16 thr"
    );
    rule(90);
    for (i, p) in Params::fast_sets().iter().enumerate() {
        // Keygen dominates setup; a couple of signatures suffice for a
        // stable per-signature time (the workload is deterministic).
        let single = measure_kops(*p, 2, 1);
        let multi = measure_kops(*p, threads.max(2), threads);
        let (p1, p16) = reference::AVX2_TABLE10[i];
        println!(
            "{:<16} {:>16.4} {:>16.4}   paper AVX2: {:>9.3} {:>11.3}",
            p.name(),
            single,
            multi,
            p1,
            p16,
        );
    }
    println!();
    println!("Shape checks: CPU signing sits well under 1 KOPS with rates ordered");
    println!("128f > 192f > 256f; our scalar implementation trails the paper's AVX2");
    println!("by the expected SIMD factor (~4-6x). On a single-core machine the");
    println!("multi-thread column degenerates to the single-thread rate; with 16");
    println!("cores it scales the way the paper's 16-thread row does. Either way the");
    println!("simulated GPU holds a 2-4 order-of-magnitude advantage (Table IX/X).");
}
