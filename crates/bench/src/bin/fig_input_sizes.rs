//! Regenerates the **§IV-E3 input-size sensitivity** study: throughput at
//! message lengths 1K–4K with block size fixed at 1024.
//!
//! Message bytes only affect the host-side `H_msg` digest; the signing
//! workload (tree structure, chain counts) is constant — so the curves
//! are flat and HERO's speedup is preserved at every input size, which is
//! exactly the paper's finding.

use hero_bench::{fmt_x, header, paper, primary_device, rule};
use hero_sign::engine::{HeroSigner, PipelineOptions};
use hero_sphincs::params::Params;

const MESSAGES: u32 = 1024;

/// Extra host-side hashing time for `len`-byte messages (µs per batch):
/// one SHA-256 pass over the message per signature.
fn hashing_us(len: usize) -> f64 {
    // ~64 bytes per compression, ~1600 cycles at ~2 GHz host-equivalent.
    let compressions = len.div_ceil(64) as f64;
    compressions * 1600.0 / 2.0e9 * 1.0e6 * MESSAGES as f64 / 128.0
}

fn main() {
    let device = primary_device();
    header(
        "Input sizes (§IV-E3)",
        "Throughput across message lengths 1K-4K (block = 1024)",
    );
    for (i, p) in Params::fast_sets().iter().enumerate() {
        println!("\n{}:", p.name());
        println!(
            "  {:<8} {:>12} {:>12} {:>9}",
            "Bytes", "Base KOPS", "HERO KOPS", "Speedup"
        );
        rule(48);
        let baseline = HeroSigner::baseline(device.clone(), *p).unwrap();
        let hero = HeroSigner::hero(device.clone(), *p).unwrap();
        let mut speedups = Vec::new();
        // Message length only shifts the host-side hashing term; the
        // pipeline simulations are length-invariant, so run them once.
        let b = baseline
            .simulate(PipelineOptions::new(MESSAGES).batch_size(1).streams(128))
            .unwrap();
        let h = hero
            .simulate(PipelineOptions::new(MESSAGES).batch_size(512).streams(4))
            .unwrap();
        for len in [1024usize, 2048, 3072, 4096] {
            let extra = hashing_us(len);
            let b_kops = MESSAGES as f64 / (b.makespan_us + extra) * 1.0e3;
            let h_kops = MESSAGES as f64 / (h.makespan_us + extra) * 1.0e3;
            speedups.push(h_kops / b_kops);
            println!(
                "  {:<8} {:>12.2} {:>12.2} {:>9}",
                len,
                b_kops,
                h_kops,
                fmt_x(h_kops / b_kops)
            );
        }
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        println!(
            "  average speedup {} (paper: {:.2}x)",
            fmt_x(avg),
            paper::INPUT_SIZE_SPEEDUP[i]
        );
    }
    println!();
    println!("Shape checks: throughput is nearly flat in message length — the digest");
    println!("determines the signing path, but the hash-tree workload is fixed.");
}
