//! Regenerates **Table VIII**: per-kernel performance (KOPS), warp
//! occupancy, compute throughput and memory throughput, baseline vs
//! HERO-Sign, on the RTX 4090 with 1024-message batches.

use hero_bench::{fmt_x, header, paper, primary_device, rule, EVAL_MESSAGES};
use hero_sign::engine::HeroSigner;
use hero_sphincs::params::Params;

fn kops(messages: u32, time_us: f64) -> f64 {
    messages as f64 / time_us * 1.0e3
}

fn main() {
    let device = primary_device();
    header(
        "Table VIII",
        "Kernel performance comparison: baseline vs HERO-Sign (RTX 4090, 1024 msgs)",
    );
    println!(
        "{:<14} {:<11} {:>8} {:>8} {:>7} | {:>7} {:>7} | {:>7} {:>7} | {:>7} {:>7}",
        "Set",
        "Kernel",
        "BaseKOPS",
        "HeroKOPS",
        "Speedup",
        "OccB%",
        "OccH%",
        "CmpB%",
        "CmpH%",
        "MemB%",
        "MemH%"
    );
    rule(118);

    for (i, p) in Params::fast_sets().iter().enumerate() {
        let base = HeroSigner::baseline(device.clone(), *p)
            .unwrap()
            .kernel_reports(EVAL_MESSAGES);
        let hero = HeroSigner::hero(device.clone(), *p)
            .unwrap()
            .kernel_reports(EVAL_MESSAGES);
        let paper_row = &paper::TABLE8[i];
        let paper_pairs = [paper_row.fors, paper_row.tree, paper_row.wots];

        for (k, (b, h)) in base.iter().zip(hero.iter()).enumerate() {
            let bk = kops(EVAL_MESSAGES, b.time_us);
            let hk = kops(EVAL_MESSAGES, h.time_us);
            println!(
                "{:<14} {:<11} {:>8.1} {:>8.1} {:>7} | {:>7.2} {:>7.2} | {:>7.2} {:>7.2} | {:>7.2} {:>7.2}",
                if k == 0 { p.name() } else { "" },
                b.name,
                bk,
                hk,
                fmt_x(hk / bk),
                b.achieved_occupancy * 100.0,
                h.achieved_occupancy * 100.0,
                b.compute_throughput_pct,
                h.compute_throughput_pct,
                b.memory_throughput_pct,
                h.memory_throughput_pct,
            );
            let (pb, ph) = paper_pairs[k];
            println!(
                "{:<14} {:<11} {:>8.1} {:>8.1} {:>7}   (paper)",
                "",
                "",
                pb,
                ph,
                fmt_x(ph / pb)
            );
        }
        rule(118);
    }
    println!("Shape checks: HERO wins every cell; FORS gains the most, TREE the least;");
    println!("WOTS+ gains come from the div/mod→shift rewrite (compute throughput drops).");
}
