//! Regenerates **Table XI**: average compilation time, baseline vs
//! HERO-Sign's compile-time branching, across the three parameter sets.
//!
//! Kernel "source sizes" scale with the parameter set (wider hashes and
//! more unrolled chain iterations inflate the inlined SHA-2 bodies); the
//! branch strategy and per-kernel PTX selection follow Table V.

use hero_bench::{fmt_x, header, paper, rule};
use hero_gpu_sim::compile::{build_seconds, BranchStrategy, KernelSource};
use hero_sphincs::params::Params;

/// Models each kernel's optimizer-visible statement counts for a set.
fn kernel_sources(params: &Params, selections: (bool, bool, bool)) -> Vec<KernelSource> {
    // Statements grow mildly with hash width ((n/16)^0.35: wider chaining
    // state, same control structure). FORS_Sign carries the most
    // optimizer-visible code (unrolled fused reduction); TREE_Sign
    // inlines wots_gen_leaf; WOTS+_Sign is the lightest. The PTX variant
    // keeps 75% of statements optimizer-visible and hides 30% inside
    // opaque asm blocks.
    let scale = (params.n as f32 / 16.0).powf(0.35);
    let body = |base: f32| (base * scale) as u32;
    let (sel_fors, sel_tree, sel_wots) = selections;
    let kernel = |native: f32, selects_ptx: bool| KernelSource {
        native_stmts: body(native),
        ptx_visible_stmts: body(native * 0.75),
        ptx_opaque_stmts: body(native * 0.30),
        selects_ptx,
    };
    vec![
        kernel(8_000.0, sel_fors),
        kernel(6_000.0, sel_tree),
        kernel(3_000.0, sel_wots),
    ]
}

fn main() {
    header(
        "Table XI",
        "Average compilation time (s), baseline vs HERO compile-time branching",
    );
    println!(
        "{:<16} {:>10} {:>10} {:>9}   paper: {:>8} {:>8} {:>8}",
        "Set", "Baseline", "HERO", "Speedup", "Base", "HERO", "Speedup"
    );
    rule(92);
    for (i, p) in Params::fast_sets().iter().enumerate() {
        let selections = paper::TABLE5[i];
        let sources = kernel_sources(p, selections);
        let baseline = build_seconds(&sources, BranchStrategy::NativeOnly);
        let hero = build_seconds(&sources, BranchStrategy::CompileTimeBranch);
        let (pb, ph) = paper::TABLE11[i];
        println!(
            "{:<16} {:>10.2} {:>10.2} {:>9}   paper: {:>8.2} {:>8.2} {:>8}",
            p.name(),
            baseline,
            hero,
            fmt_x(baseline / hero),
            pb,
            ph,
            fmt_x(pb / ph),
        );
        // The runtime-branch strategy HERO rejects (§III-C3) for context.
        let runtime = build_seconds(&sources, BranchStrategy::RuntimeBranch);
        println!(
            "{:<16} {:>10.2} (runtime-branch alternative: slower than both)",
            "", runtime
        );
    }
    println!();
    println!("Shape checks: compile-time branching builds *faster* than the baseline —");
    println!("PTX asm blocks shrink the optimizer's search space by more than template");
    println!("instantiation adds (paper: 1.28x / 1.07x / 1.26x).");
}
