//! Steady-state signing bench: cold vs warm hypertree-memoized signing.
//!
//! The cache story is many-signs-per-key traffic: after the first
//! request, a key's upper-layer XMSS subtrees and WOTS+ roots are
//! resident, and every later sign pays only FORS plus the bottom-layer
//! churn. This bench measures that payoff three ways on one shape:
//!
//! * **cold** — an engine built with [`CacheConfig::disabled`]: every
//!   sign rebuilds its subtrees (the pre-cache execution model);
//! * **warm** — an engine whose cache was pre-filled with
//!   `warm_key` (warm budget raised so *every* layer is resident); the
//!   timed signs hit on all `d` layers;
//! * **churn** — a deliberately undersized cache (`max_keys: 2`) fed
//!   round-robin by four keys: constant eviction, every sign refills.
//!   This leg must *degrade*, not error — it bounds the worst case at
//!   roughly cold cost plus fill overhead.
//!
//! Byte identity is asserted before any timing: cold, warm, and the
//! scalar reference signer all emit identical signatures, and the churn
//! engine re-signs evicted keys to oracle bytes.
//!
//! Results go to `BENCH_steady_state.json`. One gate fails the process:
//! warm throughput must reach the shape's multiplier over cold — at
//! least 2.0x on the full shape (taller hypertree, h = 12, d = 4, all
//! 585 subtrees resident), at least 1.5x on the CI `--smoke` shape
//! (h = 6, d = 3, 21 subtrees).
//!
//! ```text
//! bench_steady_state [--smoke] [--iters N] [--workers W] [--requests R] [--out PATH]
//! ```

use std::time::Instant;

use hero_gpu_sim::device::rtx_4090;
use hero_sign::{CacheConfig, HeroSigner};
use hero_sphincs::params::Params;
use hero_sphincs::sign::{keygen_from_seeds, SigningKey};

fn msg(i: usize) -> Vec<u8> {
    format!("steady-state bench msg {i}").into_bytes()
}

fn key_for(params: Params, seed_byte: u8) -> SigningKey {
    let n = params.n;
    let (sk, _) = keygen_from_seeds(
        params,
        (0..n as u8).map(|b| b ^ seed_byte).collect(),
        (50..50 + n as u8).collect(),
        (100..100 + n as u8).collect(),
    );
    sk
}

/// Best rate (signs/sec) over `iters` runs of `work` signing `total` msgs.
fn best_rate(iters: usize, total: usize, mut work: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        work();
        best = best.min(start.elapsed().as_secs_f64());
    }
    total as f64 / best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_steady_state.json".to_string());
    let workers: usize = flag("--workers").and_then(|v| v.parse().ok()).unwrap_or(8);
    let iters: usize = flag("--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 2 } else { 3 });
    let batch: usize = flag("--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 4 } else { 16 });

    // Smoke: the repo's standard reduced shape, finishes in seconds.
    // Full: a taller reduced f-shape (h' = 3 like the real -f sets)
    // whose whole hypertree — 1 + 8 + 64 + 512 = 585 subtrees — fits
    // the cache, so steady state eliminates *all* subtree hashing, the
    // regime the >= 2x gate certifies. (Real full-height sets cannot
    // keep their bottom layers resident — 2^54 trees — so their warm
    // win is confined to the top layers; the bench shape isolates the
    // cache effect rather than the parameter set's tree count.)
    let mut params = Params::sphincs_128f();
    let gate_multiplier = if smoke {
        params.h = 6;
        params.d = 3;
        params.log_t = 4;
        params.k = 8;
        1.5
    } else {
        params.h = 12;
        params.d = 4;
        params.log_t = 6;
        params.k = 14;
        2.0
    };
    let params_label = format!(
        "{} (reduced steady-state shape, h={} d={} log_t={} k={})",
        params.name(),
        params.h,
        params.d,
        params.log_t,
        params.k
    );

    let sk = key_for(params, 0);
    let builder = || HeroSigner::builder(rtx_4090(), params).workers(workers);
    let cold_engine = builder()
        .cache_config(CacheConfig::disabled())
        .build()
        .expect("cold engine builds");
    let warm_engine = builder()
        .cache_config(CacheConfig {
            // Raise the warm budget past the shape's whole tree count
            // so `warm_key` makes every layer resident up front.
            warm_trees: 1 << 12,
            ..CacheConfig::default()
        })
        .build()
        .expect("warm engine builds");

    let msgs_owned: Vec<Vec<u8>> = (0..batch).map(msg).collect();
    let msgs: Vec<&[u8]> = msgs_owned.iter().map(Vec::as_slice).collect();

    // Correctness gate before any timing: cold and warm paths emit the
    // scalar reference signer's exact bytes.
    let filled = warm_engine.warm_key(&sk).expect("warm fill");
    assert!(filled > 0, "warm_key filled nothing");
    let cold_sigs = cold_engine.sign_batch(&sk, &msgs).expect("cold sign");
    let warm_sigs = warm_engine.sign_batch(&sk, &msgs).expect("warm sign");
    assert_eq!(cold_sigs, warm_sigs, "warm signatures diverged from cold");
    for (m, sig) in msgs.iter().zip(&cold_sigs) {
        assert_eq!(sig, &sk.sign(m), "cold signature diverged from oracle");
    }
    let warm_stats = warm_engine.cache_stats();
    assert_eq!(
        warm_stats.misses, 0,
        "a fully warmed key must not miss: {warm_stats:?}"
    );

    println!("bench_steady_state: {params_label}, {workers} workers, {iters} iters, {batch} msgs");

    let cold_rate = best_rate(iters, batch, || {
        cold_engine.sign_batch(&sk, &msgs).expect("cold sign");
    });
    let warm_rate = best_rate(iters, batch, || {
        warm_engine.sign_batch(&sk, &msgs).expect("warm sign");
    });
    let speedup = warm_rate / cold_rate;
    println!("  cold (cache disabled): {cold_rate:>9.1} signs/s");
    println!("  warm (all layers resident): {warm_rate:>9.1} signs/s  ({speedup:.2}x)");

    // Churn: four keys through a two-key cache — every sign evicts and
    // refills; must stay correct and roughly cold-cost, never error.
    let churn_engine = builder()
        .cache_config(CacheConfig {
            max_keys: 2,
            ..CacheConfig::default()
        })
        .build()
        .expect("churn engine builds");
    let churn_keys: Vec<SigningKey> = (1..=4).map(|i| key_for(params, 0x40 + i)).collect();
    let churn_rate = best_rate(iters, batch, || {
        for (i, m) in msgs.iter().enumerate() {
            churn_engine
                .sign_batch(&churn_keys[i % churn_keys.len()], &[m])
                .expect("churn sign");
        }
    });
    let churn_stats = churn_engine.cache_stats();
    assert!(
        churn_stats.evictions > 0,
        "churn leg must evict: {churn_stats:?}"
    );
    assert!(
        churn_stats.resident_keys <= 2,
        "churn cache over bound: {churn_stats:?}"
    );
    for key in &churn_keys {
        let probe = b"churn correctness probe";
        assert_eq!(
            churn_engine.sign_batch(key, &[probe]).expect("churn probe")[0],
            key.sign(probe),
            "evicted key re-signed to wrong bytes"
        );
    }
    let churn_vs_cold = churn_rate / cold_rate;
    println!(
        "  churn (2-key cache, 4 keys): {churn_rate:>9.1} signs/s  ({churn_vs_cold:.2}x cold, \
         {} evictions)",
        churn_stats.evictions
    );

    let gate_warm = speedup >= gate_multiplier;
    let final_warm = warm_engine.cache_stats();
    let json = format!(
        "{{\n  \"bench\": \"steady_state\",\n  \"params\": \"{}\",\n  \"smoke\": {},\n  \
         \"workers\": {},\n  \"batch\": {},\n  \"signatures_byte_identical\": true,\n  \
         \"cold_signs_per_sec\": {:.3},\n  \"warm_signs_per_sec\": {:.3},\n  \
         \"warm_vs_cold\": {:.3},\n  \"churn_signs_per_sec\": {:.3},\n  \
         \"churn_vs_cold\": {:.3},\n  \"warm_cache\": {{\n    \"hits\": {},\n    \
         \"misses\": {},\n    \"evictions\": {},\n    \"resident_bytes\": {},\n    \
         \"resident_keys\": {},\n    \"resident_subtrees\": {}\n  }},\n  \
         \"churn_evictions\": {},\n  \"gates\": {{\n    \
         \"warm_at_least_{:.1}x_cold\": {}\n  }}\n}}\n",
        params_label,
        smoke,
        workers,
        batch,
        cold_rate,
        warm_rate,
        speedup,
        churn_rate,
        churn_vs_cold,
        final_warm.hits,
        final_warm.misses,
        final_warm.evictions,
        final_warm.resident_bytes,
        final_warm.resident_keys,
        final_warm.resident_subtrees,
        churn_stats.evictions,
        gate_multiplier,
        gate_warm,
    );
    std::fs::write(&out_path, json).expect("write bench json");
    println!("  wrote {out_path}");

    if !gate_warm {
        eprintln!(
            "GATE FAILED: warm signing reached {speedup:.2}x cold, below the \
             {gate_multiplier:.1}x steady-state floor"
        );
        std::process::exit(1);
    }
}
