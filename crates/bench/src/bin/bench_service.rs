//! Persistent-runtime / sign-service trajectory bench.
//!
//! Measures the same workload — N concurrent clients each signing a
//! stream of single messages — three ways, at 1/8/64 clients:
//!
//! * **per-call pool** — the pre-refactor execution model: every sign
//!   call spins up its own `Executor` (thread spawn + join per call),
//!   the way `core::par`/`task-graph` used to open a `std::thread::scope`
//!   per batch. The "GPU that powers off between launches".
//! * **persistent runtime** — all clients share one `HeroSigner` and its
//!   long-lived `Executor`; concurrent sign calls interleave their stage
//!   graphs on the same workers (streams sharing a device), but each
//!   message still pays its own plan and submission.
//! * **coalesced service** — clients submit to the micro-batching
//!   `SignService`, which merges in-flight requests into planned batches
//!   (the device-filling launch of the paper's pipeline).
//!
//! Results go to `BENCH_service.json`. Two gates fail the process (CI
//! runs `--smoke`):
//!
//! 1. the persistent runtime must not be slower than the per-call pool
//!    at the 64-client leg (the whole point of not tearing pools down);
//! 2. the coalesced service must reach >= 1.2x the per-call-pool rate
//!    (looped single-message `sign` exactly as the pre-refactor engine
//!    executed it: a worker pool of the same size spun up per call) at
//!    every leg with >= 2 clients.
//!
//! The single-thread looped rate on the *persistent* runtime is also
//! recorded for context; on many-core hosts the service pulls ahead of
//! that too (coalesced batches fill the pool where single-message graphs
//! cannot), while on a 1-core host the two converge — hash work
//! dominates and is identical byte-for-byte.
//!
//! ```text
//! bench_service [--smoke] [--iters N] [--workers W] [--requests R] [--out PATH]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use hero_gpu_sim::device::rtx_4090;
use hero_sign::service::{ServiceConfig, SignService};
use hero_sign::{plan, HeroSigner};
use hero_sphincs::hash::HashCtx;
use hero_sphincs::params::Params;
use hero_sphincs::sign::{keygen_from_seeds, SigningKey};
use hero_task_graph::Executor;

struct Leg {
    clients: usize,
    per_call_pool: f64,
    persistent_runtime: f64,
    coalesced_service: f64,
    service_vs_per_call: f64,
    service_vs_looped_persistent: f64,
    persistent_vs_per_call: f64,
}

fn msg(client: usize, i: usize) -> Vec<u8> {
    format!("service bench client {client} msg {i}").into_bytes()
}

/// Best rate (msgs/sec) over `iters` runs of `work` signing `total` msgs.
fn best_rate(iters: usize, total: usize, mut work: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        work();
        best = best.min(start.elapsed().as_secs_f64());
    }
    total as f64 / best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_service.json".to_string());
    // Default 8 (the bench_batch convention): the bench characterizes
    // the runtime at a production-ish pool size regardless of the CI
    // box's core count or HERO_WORKERS matrix leg.
    let workers: usize = flag("--workers").and_then(|v| v.parse().ok()).unwrap_or(8);
    let iters: usize = flag("--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 2 } else { 3 });
    let requests: usize = flag("--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 4 } else { 8 });

    // The service story is about amortizing per-message costs, so the
    // bench uses a reduced shape where those costs are visible in
    // seconds, not minutes; full-set signing hash work is covered by
    // bench_batch/bench_hot_path.
    let mut params = Params::sphincs_128f();
    params.h = 6;
    params.d = 3;
    params.log_t = if smoke { 4 } else { 6 };
    params.k = 8;
    let params_label = format!(
        "{} (reduced service shape, log_t={})",
        params.name(),
        params.log_t
    );

    let n = params.n;
    let (sk, vk) = keygen_from_seeds(
        params,
        (0..n as u8).collect(),
        (50..50 + n as u8).collect(),
        (100..100 + n as u8).collect(),
    );
    let engine = Arc::new(
        HeroSigner::builder(rtx_4090(), params)
            .workers(workers)
            .build()
            .expect("engine builds"),
    );

    // Correctness gate before any timing: all three paths produce the
    // same bytes and verify.
    let probe = msg(0, 0);
    let direct = engine.sign(&sk, &probe).expect("direct sign");
    {
        let per_call = Executor::new(workers).expect("pool");
        let ctx = HashCtx::with_alg(params, sk.pk_seed(), sk.alg());
        let sigs = plan::sign_batch(&ctx, &sk, &[probe.as_slice()], &per_call);
        assert_eq!(sigs[0], direct, "per-call pool diverged");
        let service =
            SignService::start(engine.clone(), sk.clone(), ServiceConfig::default()).unwrap();
        let via_service = service.submit(probe.clone()).unwrap().wait().unwrap();
        assert_eq!(via_service, direct, "service diverged");
        vk.verify(&probe, &direct).expect("verifies");
    }

    println!(
        "bench_service: {params_label}, {workers} workers, {iters} iters, {requests} req/client"
    );

    // Looped single-thread baseline: the acceptance yardstick — one
    // caller looping `sign` on the persistent runtime.
    let looped_msgs: Vec<Vec<u8>> = (0..requests.max(8)).map(|i| msg(99, i)).collect();
    let looped_rate = best_rate(iters, looped_msgs.len(), || {
        for m in &looped_msgs {
            engine.sign(&sk, m).expect("looped sign");
        }
    });
    println!("  looped single-thread sign: {looped_rate:>9.1} msgs/s");

    let client_counts: &[usize] = &[1, 8, 64];
    let mut legs: Vec<Leg> = Vec::new();
    for &clients in client_counts {
        let total = clients * requests;

        // Per-call pool: every request pays Executor spin-up/tear-down.
        let per_call_rate = best_rate(iters, total, || {
            std::thread::scope(|scope| {
                for c in 0..clients {
                    let (sk, params): (&SigningKey, Params) = (&sk, params);
                    scope.spawn(move || {
                        for i in 0..requests {
                            let pool = Executor::new(workers).expect("per-call pool");
                            let ctx = HashCtx::with_alg(params, sk.pk_seed(), sk.alg());
                            let m = msg(c, i);
                            let sigs = plan::sign_batch(&ctx, sk, &[m.as_slice()], &pool);
                            assert_eq!(sigs.len(), 1);
                        }
                    });
                }
            });
        });

        // Persistent runtime: shared engine, per-message submissions.
        let persistent_rate = best_rate(iters, total, || {
            std::thread::scope(|scope| {
                for c in 0..clients {
                    let engine = Arc::clone(&engine);
                    let sk = &sk;
                    scope.spawn(move || {
                        for i in 0..requests {
                            engine.sign(sk, &msg(c, i)).expect("persistent sign");
                        }
                    });
                }
            });
        });

        // Coalesced service: shared micro-batcher.
        let service_rate = best_rate(iters, total, || {
            let service = SignService::start(
                engine.clone(),
                sk.clone(),
                ServiceConfig {
                    max_batch: 64,
                    max_wait: Duration::from_micros(500),
                    queue_depth: 1024,
                },
            )
            .expect("service starts");
            std::thread::scope(|scope| {
                for c in 0..clients {
                    let service = &service;
                    scope.spawn(move || {
                        let tickets: Vec<_> = (0..requests)
                            .map(|i| service.submit(msg(c, i)).expect("accepted"))
                            .collect();
                        for t in tickets {
                            t.wait().expect("signed");
                        }
                    });
                }
            });
            service.shutdown();
        });

        let leg = Leg {
            clients,
            per_call_pool: per_call_rate,
            persistent_runtime: persistent_rate,
            coalesced_service: service_rate,
            service_vs_per_call: service_rate / per_call_rate,
            service_vs_looped_persistent: service_rate / looped_rate,
            persistent_vs_per_call: persistent_rate / per_call_rate,
        };
        println!(
            "  {clients:>3} clients: per-call {per_call_rate:>9.1} | persistent \
             {persistent_rate:>9.1} | service {service_rate:>9.1} msgs/s | \
             service vs per-call {:>5.2}x | persistent vs per-call {:>5.2}x",
            leg.service_vs_per_call, leg.persistent_vs_per_call
        );
        legs.push(leg);
    }

    let gate_persistent = legs
        .iter()
        .find(|l| l.clients == 64)
        .map(|l| l.persistent_vs_per_call >= 1.0)
        .unwrap_or(false);
    let gate_service = legs
        .iter()
        .filter(|l| l.clients >= 2)
        .all(|l| l.service_vs_per_call >= 1.2);

    let legs_json: Vec<String> = legs
        .iter()
        .map(|l| {
            format!(
                "    {{\n      \"clients\": {},\n      \"per_call_pool_msgs_per_sec\": {:.3},\n      \
                 \"persistent_runtime_msgs_per_sec\": {:.3},\n      \
                 \"coalesced_service_msgs_per_sec\": {:.3},\n      \
                 \"service_vs_per_call\": {:.3},\n      \
                 \"service_vs_looped_persistent\": {:.3},\n      \
                 \"persistent_vs_per_call\": {:.3}\n    }}",
                l.clients,
                l.per_call_pool,
                l.persistent_runtime,
                l.coalesced_service,
                l.service_vs_per_call,
                l.service_vs_looped_persistent,
                l.persistent_vs_per_call
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"sign_service\",\n  \"params\": \"{}\",\n  \"smoke\": {},\n  \
         \"workers\": {},\n  \"per_client_requests\": {},\n  \
         \"signatures_byte_identical\": true,\n  \
         \"looped_single_thread_persistent_msgs_per_sec\": {:.3},\n  \"legs\": [\n{}\n  ],\n  \
         \"gates\": {{\n    \"persistent_not_slower_than_per_call_at_64\": {},\n    \
         \"service_1_2x_over_per_call_looped_at_2plus_clients\": {}\n  }}\n}}\n",
        params_label,
        smoke,
        workers,
        requests,
        looped_rate,
        legs_json.join(",\n"),
        gate_persistent,
        gate_service,
    );
    std::fs::write(&out_path, json).expect("write bench json");
    println!("  wrote {out_path}");

    if !gate_persistent {
        eprintln!("GATE FAILED: persistent runtime slower than per-call pool at 64 clients");
        std::process::exit(1);
    }
    if !gate_service {
        eprintln!(
            "GATE FAILED: coalesced service below 1.2x the per-call-pool looped sign baseline \
             at >= 2 clients"
        );
        std::process::exit(1);
    }
}
