//! Regenerates **Table V**: the profiling-driven PTX/native branch
//! selection per kernel per parameter set on the RTX 4090.

use hero_bench::{header, primary_device, rule};
use hero_gpu_sim::isa::Sha2Path;
use hero_sign::engine::HeroSigner;
use hero_sign::ptx::KernelKind;
use hero_sphincs::params::Params;

fn mark(path: Sha2Path) -> &'static str {
    match path {
        Sha2Path::Ptx => "PTX",
        Sha2Path::Native => "native",
    }
}

fn main() {
    let device = primary_device();
    header(
        "Table V",
        "PTX branch selection across signature kernels (RTX 4090, Block=1024)",
    );
    println!(
        "{:<16} {:>12} {:>12} {:>12}   paper row",
        "Parameter set", "FORS_Sign", "TREE_Sign", "WOTS+_Sign"
    );
    rule(80);
    for (i, p) in Params::fast_sets().iter().enumerate() {
        let engine = HeroSigner::hero(device.clone(), *p).unwrap();
        let sel = engine.selection();
        let (pf, pt, pw) = hero_bench::paper::TABLE5[i];
        let fmt_paper = |b: bool| if b { "PTX" } else { "native" };
        println!(
            "{:<16} {:>12} {:>12} {:>12}   ({}, {}, {})",
            p.name(),
            mark(sel.path(KernelKind::ForsSign)),
            mark(sel.path(KernelKind::TreeSign)),
            mark(sel.path(KernelKind::WotsSign)),
            fmt_paper(pf),
            fmt_paper(pt),
            fmt_paper(pw),
        );
    }
    println!();
    println!("Selection is empirical: both code paths are simulated per kernel and the");
    println!("faster one is monomorphized at compile time (Fig. 6's `if constexpr`).");
}
