//! Regenerates **Table VI**: shared-memory bank conflicts during the
//! tree reduction, baseline layout vs the generalized padding strategy,
//! for `FORS_Sign` and `TREE_Sign` (Block = 1, i.e. one message).
//!
//! Our counts are *measured* by replaying the kernels' exact warp access
//! patterns through the 32-bank model — one signing pass per cell. The
//! paper profiles a longer Nsight capture, so absolute magnitudes differ
//! by the capture length; the shape (huge → zero under padding; FORS ≫
//! TREE) is the reproduction target.

use hero_bench::{header, paper, primary_device, rule};
use hero_gpu_sim::banks::PaddingScheme;
use hero_sign::engine::HeroSigner;
use hero_sign::kernels::{fors_sign, tree_sign};
use hero_sphincs::params::Params;

fn main() {
    let device = primary_device();
    header(
        "Table VI",
        "Reduction bank conflicts: baseline vs padding (Block = 1 message)",
    );
    println!(
        "{:<16} {:<11} {:>12} {:>12} {:>10} {:>10}   paper baseline (Ld, St)",
        "Set", "Kernel", "Ld base", "St base", "Ld pad", "St pad"
    );
    rule(110);

    for (i, p) in Params::fast_sets().iter().enumerate() {
        let engine = HeroSigner::hero(device.clone(), *p).unwrap();
        let geometry = engine.fors_layout().geometry(&p.clone());
        let none = PaddingScheme::none();
        let padded = PaddingScheme::for_width(p.n);

        let rounds = geometry.rounds as u64;
        let (fl0, fs0) = fors_sign::measure_reduction(p, &geometry, none);
        let (fl1, fs1) = fors_sign::measure_reduction(p, &geometry, padded);
        let (pl, ps) = paper::TABLE6_FORS_BASELINE[i];
        println!(
            "{:<16} {:<11} {:>12} {:>12} {:>10} {:>10}   ({pl}, {ps})",
            p.name(),
            "FORS_Sign",
            fl0.conflicts * rounds,
            fs0.conflicts * rounds,
            fl1.conflicts * rounds,
            fs1.conflicts * rounds,
        );

        let (tl0, ts0) = tree_sign::measure_reduction(p, none);
        let (tl1, ts1) = tree_sign::measure_reduction(p, padded);
        let (pl, ps) = paper::TABLE6_TREE_BASELINE[i];
        println!(
            "{:<16} {:<11} {:>12} {:>12} {:>10} {:>10}   ({pl}, {ps})",
            "", "TREE_Sign", tl0.conflicts, ts0.conflicts, tl1.conflicts, ts1.conflicts,
        );
    }
    println!();
    println!("Shape checks: padding drives conflicts to (near-)zero everywhere;");
    println!("FORS_Sign conflicts dwarf TREE_Sign's; 24-byte (192f) needs Eq. 3's R=3.");
}
