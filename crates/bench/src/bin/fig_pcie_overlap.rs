//! Regenerates the **§IV-E1 PCIe-overlap guidance**: with transfers in
//! the loop, throughput-optimal batches stay large (≥512), but the
//! fill/drain cost of big batches grows — so the *latency* per batch and
//! the transfer-bound regime favor batches near 64, exactly the paper's
//! two-sided recommendation.

use hero_bench::{header, primary_device, rule};
use hero_sign::engine::{HeroSigner, PipelineOptions};
use hero_sphincs::params::Params;

const MESSAGES: u32 = 1024;
const MSG_BYTES: u32 = 1024;

fn main() {
    let device = primary_device();
    header(
        "PCIe overlap (§IV-E1)",
        "Batch-size trade-off with host-device transfers (1 KiB messages)",
    );
    for p in Params::fast_sets() {
        let hero = HeroSigner::hero(device.clone(), p).unwrap();
        println!("\n{} (signature {} B):", p.name(), p.sig_bytes());
        println!(
            "  {:<8} {:>10} {:>10} {:>10} {:>12} {:>12}",
            "Batch", "KOPS", "KOPS+PCIe", "H2D us", "D2H us", "bound"
        );
        rule(70);
        for bs in [16u32, 64, 128, 256, 512, 1024] {
            let streams = (MESSAGES / bs).clamp(4, 64) as usize;
            let opts = PipelineOptions::new(MESSAGES)
                .batch_size(bs)
                .streams(streams);
            let pure = hero.simulate(opts).unwrap();
            let with_pcie = hero.simulate(opts.pcie_overlap(MSG_BYTES)).unwrap();
            let transfers = with_pcie.transfers.expect("pcie modeling requested");
            println!(
                "  {:<8} {:>10.2} {:>10.2} {:>10.1} {:>12.1} {:>12}",
                bs,
                pure.kops,
                with_pcie.kops,
                transfers.h2d_batch_us,
                transfers.d2h_batch_us,
                if transfers.transfer_bound {
                    "PCIe"
                } else {
                    "compute"
                },
            );
        }
    }
    println!();
    println!("Shape checks: compute hides transfers at every batch size for the -f");
    println!("sets (signing is hash-bound); the batch-64 row minimizes per-batch");
    println!("fill/drain latency while staying within a few percent of peak KOPS —");
    println!("the paper's \"smaller batch near 64 is optimal [for PCIe overlap]\".");
}
