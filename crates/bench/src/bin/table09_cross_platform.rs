//! Regenerates **Table IX**: cross-platform comparison of SPHINCS+
//! signing — HERO-Sign on the (simulated) RTX 4090 against the published
//! FPGA and ASIC implementations.
//!
//! Comparators are published constants (the paper compares against
//! reported numbers, not reruns); our HERO row is simulated. Power per
//! signature for our row uses the 4090's 450 W board power over the
//! simulated signing rate, as the paper's PPS metric does.

use hero_bench::{header, reference, rule};
use hero_sign::engine::{HeroSigner, PipelineOptions};
use hero_sphincs::params::Params;

const RTX_4090_BOARD_WATTS: f64 = 450.0;

fn main() {
    header(
        "Table IX",
        "Cross-platform comparison (throughput KOPS, power-per-signature W)",
    );

    // Our simulated HERO row.
    let device = hero_bench::primary_device();
    let mut ours = [0.0f64; 3];
    for (i, p) in Params::fast_sets().iter().enumerate() {
        let report = HeroSigner::hero(device.clone(), *p)
            .unwrap()
            .simulate(PipelineOptions::new(1024).batch_size(512).streams(4))
            .unwrap();
        ours[i] = report.kops;
    }

    println!(
        "{:<30} {:<9} {:>10} {:>10} {:>10}",
        "System", "Hash", "128f KOPS", "192f KOPS", "256f KOPS"
    );
    rule(76);
    let fmt = |v: Option<f64>| match v {
        Some(x) if x >= 1.0 => format!("{x:.2}"),
        Some(x) => format!("{x:.5}"),
        None => "n/a".to_string(),
    };
    println!(
        "{:<30} {:<9} {:>10} {:>10} {:>10}",
        "HERO-Sign repro (sim 4090)",
        "SHA256",
        format!("{:.2}", ours[0]),
        format!("{:.2}", ours[1]),
        format!("{:.2}", ours[2]),
    );
    println!(
        "{:<30} {:<9} {:>10} {:>10} {:>10}   (paper's own row)",
        reference::HERO_TABLE9.name,
        reference::HERO_TABLE9.hash,
        fmt(reference::HERO_TABLE9.kops[0]),
        fmt(reference::HERO_TABLE9.kops[1]),
        fmt(reference::HERO_TABLE9.kops[2]),
    );
    for c in &reference::COMPARATORS {
        println!(
            "{:<30} {:<9} {:>10} {:>10} {:>10}",
            c.name,
            c.hash,
            fmt(c.kops[0]),
            fmt(c.kops[1]),
            fmt(c.kops[2]),
        );
    }

    println!();
    println!("Speedups of our simulated HERO row over each comparator:");
    for c in &reference::COMPARATORS {
        let ratios: Vec<String> = (0..3)
            .map(|i| match c.kops[i] {
                Some(k) => format!("{:.1}x", ours[i] / k),
                None => "n/a".to_string(),
            })
            .collect();
        println!(
            "  vs {:<28} {} / {} / {}",
            c.name, ratios[0], ratios[1], ratios[2]
        );
    }

    println!();
    println!("Power per signature (Watt-seconds per signature at board power):");
    for (i, p) in Params::fast_sets().iter().enumerate() {
        let pps = RTX_4090_BOARD_WATTS / (ours[i] * 1.0e3);
        println!(
            "  {:<16} ours {:.4} W/sig   paper {:?} W/sig   FPGA (Amiet) {:?} W/sig",
            p.name(),
            pps,
            reference::HERO_TABLE9.pps_watt[i].unwrap(),
            reference::COMPARATORS[1].pps_watt[i].unwrap(),
        );
    }
    println!();
    println!("Shape checks: GPU throughput is 2-3 orders of magnitude above FPGA/ASIC;");
    println!("per-signature energy is ~100x lower than the FPGA baselines.");
}
