//! Network sign-service trajectory bench.
//!
//! Measures the same workload — N closed-loop clients each signing a
//! stream of single messages under one tenant key — two ways, at
//! 1/8/64 concurrency:
//!
//! * **in-process service** — client threads submit straight to the
//!   micro-batching `SignService` (the `bench_service` coalesced path:
//!   no sockets, no framing);
//! * **TCP server** — each client owns one connection to a live
//!   `hero-server` and round-trips every message through the wire
//!   protocol (frame encode → length-prefixed TCP → keystore lookup →
//!   admission → service → response).
//!
//! The delta between the two is the cost of the network layer; the
//! spread across 1/8/64 connections is how well the listener keeps the
//! shared batcher fed. An **overload** leg then shrinks the tenant
//! queue to force typed backpressure: the bench counts `QueueFull` /
//! `TenantBusy` rejections and asserts every request was answered —
//! overload must shed load, never stall or drop.
//!
//! Results go to `BENCH_server.json`. Gates (CI runs `--smoke`):
//!
//! 1. 64 connections must scale over 1 connection (>= 1.2x in the full
//!    run, >= 1.05x in `--smoke`, whose windows are too short to fully
//!    amortize on small CI boxes): one closed-loop connection leaves
//!    the batcher idle between round trips, so if fan-in does not buy
//!    throughput the server is serializing somewhere;
//! 2. the 8-connection server must hold >= 0.5x the 8-client in-process
//!    service rate (the wire layer may tax the hot path, not halve it);
//! 3. the overload leg must answer every request, reject some with
//!    typed backpressure, and still complete some successfully.
//!
//! ```text
//! bench_server [--smoke] [--iters N] [--workers W] [--requests R] [--out PATH]
//! ```

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use hero_server::client::{Client, ClientError};
use hero_server::keystore::KeyStore;
use hero_server::server::{hero_engine_factory, Server, ServerConfig};
use hero_sign::service::{ServiceConfig, SignService};
use hero_sign::stats::LatencySummary;
use hero_sign::HeroSigner;
use hero_sphincs::params::Params;
use hero_sphincs::sign::keygen_from_seeds;

use hero_gpu_sim::device::rtx_4090;

const TENANT: &str = "bench-tenant";

fn msg(client: usize, i: usize) -> Vec<u8> {
    format!("server bench client {client} msg {i}").into_bytes()
}

/// Best rate (msgs/sec) over `iters` runs of `clients` concurrent
/// closed-loop clients. Setup stays outside the timed window: `per_iter`
/// builds the iteration's shared state (service, server address, …),
/// each client thread runs its own setup phase (e.g. TCP connect) inside
/// `client_work` *before* parking on the barrier it is handed, and the
/// clock starts only when every client has arrived — the bench measures
/// signing throughput, not connect/spawn cost.
fn best_rate<S: Sync>(
    iters: usize,
    clients: usize,
    total: usize,
    mut per_iter: impl FnMut() -> S,
    client_work: impl Fn(&S, usize, &Barrier) + Sync,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let shared = per_iter();
        // All clients + the timing thread.
        let barrier = Barrier::new(clients + 1);
        let secs = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let (shared, barrier, client_work) = (&shared, &barrier, &client_work);
                    scope.spawn(move || client_work(shared, c, barrier))
                })
                .collect();
            barrier.wait();
            let start = Instant::now();
            for h in handles {
                h.join().expect("client thread");
            }
            start.elapsed().as_secs_f64()
        });
        best = best.min(secs);
    }
    total as f64 / best
}

struct Leg {
    connections: usize,
    in_process: f64,
    server: f64,
    server_vs_in_process: f64,
}

struct Overload {
    connections: usize,
    requests: usize,
    ok: usize,
    backpressure: usize,
    other_errors: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_server.json".to_string());
    let workers: usize = flag("--workers").and_then(|v| v.parse().ok()).unwrap_or(8);
    let iters: usize = flag("--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 2 } else { 3 });
    let requests: usize = flag("--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 8 } else { 16 });

    // Same reduced shape as bench_service: the bench characterizes the
    // network/batching layers, whose costs per message must be visible
    // against sign time measured in milliseconds, not minutes.
    let mut params = Params::sphincs_128f();
    params.h = 6;
    params.d = 3;
    params.log_t = if smoke { 4 } else { 6 };
    params.k = 8;
    let params_label = format!(
        "{} (reduced service shape, log_t={})",
        params.name(),
        params.log_t
    );

    let n = params.n;
    let (sk, vk) = keygen_from_seeds(
        params,
        (0..n as u8).collect(),
        (50..50 + n as u8).collect(),
        (100..100 + n as u8).collect(),
    );
    let engine = Arc::new(
        HeroSigner::builder(rtx_4090(), params)
            .workers(workers)
            .build()
            .expect("engine builds"),
    );

    let service_config = ServiceConfig {
        max_batch: 64,
        max_wait: Duration::from_micros(500),
        queue_depth: 1024,
    };
    let start_server = |service: ServiceConfig, inflight: usize| -> Server {
        let keystore = KeyStore::new();
        keystore
            .insert(TENANT, sk.clone(), vk.clone())
            .expect("tenant registered");
        let factory = hero_engine_factory(Some(workers)).expect("factory");
        Server::start(
            factory,
            keystore,
            ServerConfig {
                service,
                per_tenant_inflight: inflight,
                ..ServerConfig::default()
            },
        )
        .expect("server starts")
    };

    // Correctness gate before any timing: the wire path returns the
    // exact bytes the key produces locally.
    let server = start_server(service_config, 256);
    {
        let probe = msg(0, 0);
        let direct = sk.sign(&probe).to_bytes(&params);
        let mut client = Client::connect(server.local_addr()).expect("connects");
        let remote = client.sign(TENANT, &probe).expect("remote sign");
        assert_eq!(remote, direct, "network path diverged from the key");
        assert!(client.verify(TENANT, &probe, &remote).expect("verify op"));
    }

    println!("bench_server: {params_label}, {workers} workers, {iters} iters, {requests} req/conn");

    let conn_counts: &[usize] = &[1, 8, 64];
    let mut legs: Vec<Leg> = Vec::new();
    let mut latency_at_8: Option<LatencySummary> = None;

    for &conns in conn_counts {
        let total = conns * requests;

        // In-process reference: same client count, no network. The
        // service is started per iteration (outside the clock).
        let in_process = best_rate(
            iters,
            conns,
            total,
            || {
                SignService::start(engine.clone(), sk.clone(), service_config)
                    .expect("service starts")
            },
            |service, c, barrier| {
                barrier.wait();
                for i in 0..requests {
                    service
                        .submit(msg(c, i))
                        .expect("accepted")
                        .wait()
                        .expect("signed");
                }
            },
        );

        // TCP: one connection per closed-loop client against the live
        // server. Connections are established before the barrier, so the
        // clock sees round trips only; per-request latencies pool into
        // the shared vec for the percentile summary.
        let addr = server.local_addr();
        let lat_pool: std::sync::Mutex<Vec<Duration>> = std::sync::Mutex::new(Vec::new());
        let server_rate = best_rate(
            iters,
            conns,
            total,
            || {
                lat_pool.lock().expect("latency pool").clear();
                addr
            },
            |addr, c, barrier| {
                let mut client = Client::connect(*addr).expect("connects");
                let mut lats = Vec::with_capacity(requests);
                barrier.wait();
                for i in 0..requests {
                    let begin = Instant::now();
                    client.sign(TENANT, &msg(c, i)).expect("remote sign");
                    lats.push(begin.elapsed());
                }
                lat_pool.lock().expect("latency pool").extend(lats);
            },
        );
        if conns == 8 {
            // The pool holds the last (not necessarily best) iteration's
            // samples — representative, and cheap to keep honest.
            let samples = std::mem::take(&mut *lat_pool.lock().expect("latency pool"));
            latency_at_8 = LatencySummary::from_unsorted(samples);
        }

        let leg = Leg {
            connections: conns,
            in_process,
            server: server_rate,
            server_vs_in_process: server_rate / in_process,
        };
        println!(
            "  {conns:>3} connections: in-process {in_process:>9.1} | server {server_rate:>9.1} \
             msgs/s | server vs in-process {:>5.2}x",
            leg.server_vs_in_process
        );
        legs.push(leg);
    }
    server.shutdown();

    // Overload: a depth-2 queue and a 4-deep admission cap under 16
    // connections firing at once. Requests must be answered — success
    // or typed backpressure — never stalled or dropped.
    let overload_conns = 16;
    let overload_requests = requests.max(4);
    let overload_server = start_server(
        ServiceConfig {
            queue_depth: 2,
            ..service_config
        },
        4,
    );
    let addr = overload_server.local_addr();
    let outcomes: Vec<Result<Vec<u8>, ClientError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..overload_conns)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connects");
                    (0..overload_requests)
                        .map(|i| client.sign(TENANT, &msg(c, i)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    overload_server.shutdown();

    let mut overload = Overload {
        connections: overload_conns,
        requests: overload_requests,
        ok: 0,
        backpressure: 0,
        other_errors: 0,
    };
    for outcome in &outcomes {
        match outcome {
            Ok(_) => overload.ok += 1,
            Err(ClientError::Wire(e)) if e.code.is_backpressure() => overload.backpressure += 1,
            Err(_) => overload.other_errors += 1,
        }
    }
    let overload_answered = outcomes.len() == overload_conns * overload_requests;
    println!(
        "  overload ({overload_conns} conns, queue 2, inflight 4): {} ok, {} typed backpressure, \
         {} other, all answered: {overload_answered}",
        overload.ok, overload.backpressure, overload.other_errors
    );

    // Gates. Smoke runs short windows on whatever CI box is available
    // (often a single core, where scaling comes purely from batch
    // amortization), so its scaling bar is lower: it proves 64
    // connections beat 1 with margin, while the full run enforces the
    // paper-style 1.2x.
    let scaling_floor = if smoke { 1.05 } else { 1.2 };
    let rate_1 = legs.iter().find(|l| l.connections == 1).map(|l| l.server);
    let rate_64 = legs.iter().find(|l| l.connections == 64).map(|l| l.server);
    let gate_scaling = match (rate_1, rate_64) {
        (Some(r1), Some(r64)) => r64 >= scaling_floor * r1,
        _ => false,
    };
    let gate_wire_tax = legs
        .iter()
        .find(|l| l.connections == 8)
        .map(|l| l.server_vs_in_process >= 0.5)
        .unwrap_or(false);
    let gate_overload = overload_answered
        && overload.backpressure > 0
        && overload.ok > 0
        && overload.other_errors == 0;

    let latency_json = match &latency_at_8 {
        Some(s) => format!(
            "{{ \"p50_us\": {:.1}, \"p90_us\": {:.1}, \"p99_us\": {:.1}, \"mean_us\": {:.1}, \
             \"samples\": {} }}",
            s.p50.as_secs_f64() * 1e6,
            s.p90.as_secs_f64() * 1e6,
            s.p99.as_secs_f64() * 1e6,
            s.mean.as_secs_f64() * 1e6,
            s.count
        ),
        None => "null".to_string(),
    };
    let legs_json: Vec<String> = legs
        .iter()
        .map(|l| {
            format!(
                "    {{\n      \"connections\": {},\n      \
                 \"in_process_msgs_per_sec\": {:.3},\n      \
                 \"server_msgs_per_sec\": {:.3},\n      \
                 \"server_vs_in_process\": {:.3}\n    }}",
                l.connections, l.in_process, l.server, l.server_vs_in_process
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"sign_server\",\n  \"params\": \"{}\",\n  \"smoke\": {},\n  \
         \"workers\": {},\n  \"per_connection_requests\": {},\n  \
         \"signatures_byte_identical\": true,\n  \"legs\": [\n{}\n  ],\n  \
         \"latency_at_8_connections\": {},\n  \
         \"overload\": {{\n    \"connections\": {},\n    \"per_connection_requests\": {},\n    \
         \"ok\": {},\n    \"typed_backpressure_rejections\": {},\n    \
         \"other_errors\": {},\n    \"all_requests_answered\": {}\n  }},\n  \
         \"gates\": {{\n    \"scaling_floor\": {},\n    \
         \"server_64_conns_scales_over_1\": {},\n    \
         \"server_8_conns_at_least_half_of_in_process\": {},\n    \
         \"overload_all_answered_with_typed_backpressure\": {}\n  }}\n}}\n",
        params_label,
        smoke,
        workers,
        requests,
        legs_json.join(",\n"),
        latency_json,
        overload.connections,
        overload.requests,
        overload.ok,
        overload.backpressure,
        overload.other_errors,
        overload_answered,
        scaling_floor,
        gate_scaling,
        gate_wire_tax,
        gate_overload,
    );
    std::fs::write(&out_path, json).expect("write bench json");
    println!("  wrote {out_path}");

    if !gate_scaling {
        eprintln!(
            "GATE FAILED: 64-connection server did not scale >= {scaling_floor}x over 1 connection"
        );
        std::process::exit(1);
    }
    if !gate_wire_tax {
        eprintln!("GATE FAILED: 8-connection server below 0.5x the in-process service rate");
        std::process::exit(1);
    }
    if !gate_overload {
        eprintln!(
            "GATE FAILED: overload must answer every request, shed some load typed, and \
             complete some requests (ok {}, backpressure {}, other {}, answered {})",
            overload.ok, overload.backpressure, overload.other_errors, overload_answered
        );
        std::process::exit(1);
    }
}
