//! Hot-path trajectory bench: batched vs scalar signing, plus the
//! hash-core lanes.
//!
//! Measures end-to-end single-message `sign` throughput for the batched
//! multi-lane implementation against the preserved scalar baseline
//! (`hero_bench::baseline`), plus compressions/sec and
//! allocations-per-sign via a counting global allocator. A second
//! section measures the hash cores in isolation — multi-lane vs scalar
//! `F` throughput for both SHA-256 (`Sha256xN`) and SHAKE-256
//! (`KeccakxN`) — so `BENCH_hot_path.json` tracks the lane engines
//! behind both halves of the parameter family. The results are written
//! to `BENCH_hot_path.json` so future PRs have a perf baseline.
//!
//! ```text
//! bench_hot_path [--smoke] [--iters N] [--out PATH]
//! ```
//!
//! `--smoke` runs one iteration on reduced parameters (CI keeps the bench
//! runnable without paying full-parameter signing time).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use hero_sphincs::address::{Address, AddressType};
use hero_sphincs::hash::{HashAlg, HashCtx};
use hero_sphincs::params::Params;
use hero_sphincs::sign::keygen_from_seeds;
use hero_sphincs::tier::{self, HashTier, Primitive};

/// Counts every heap allocation so the bench can report
/// allocations-per-sign for both paths.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to the system allocator; the counters are
// monotonic and never influence allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOC_COUNT.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

struct PathStats {
    msgs_per_sec: f64,
    allocs_per_sign: f64,
    alloc_bytes_per_sign: f64,
}

/// Times `iters` signs of distinct messages, counting allocations, after
/// one warmup sign.
fn measure(sign: impl Fn(&[u8]) -> hero_sphincs::Signature, iters: usize) -> PathStats {
    std::hint::black_box(sign(b"warmup"));
    let (allocs0, bytes0) = alloc_snapshot();
    let start = Instant::now();
    for i in 0..iters {
        let msg = [i as u8; 32];
        std::hint::black_box(sign(&msg));
    }
    let elapsed = start.elapsed().as_secs_f64();
    let (allocs1, bytes1) = alloc_snapshot();
    PathStats {
        msgs_per_sec: iters as f64 / elapsed,
        allocs_per_sign: (allocs1 - allocs0) as f64 / iters as f64,
        alloc_bytes_per_sign: (bytes1 - bytes0) as f64 / iters as f64,
    }
}

/// One hash core's scalar-vs-multi-lane `F` throughput.
struct HashCoreStats {
    scalar_hashes_per_sec: f64,
    batched_hashes_per_sec: f64,
}

impl HashCoreStats {
    fn speedup(&self) -> f64 {
        self.batched_hashes_per_sec / self.scalar_hashes_per_sec
    }
}

/// Times `rounds` sweeps of `count` tweakable-hash `F` calls, scalar
/// (`f_into` loop) vs multi-lane (`f_many`), under `alg`. The workload
/// is the WOTS+/FORS leaf shape: distinct addresses, `n`-byte messages.
fn measure_hash_core(alg: HashAlg, count: usize, rounds: usize) -> HashCoreStats {
    let params = Params::sphincs_128f();
    let n = params.n;
    let ctx = HashCtx::with_alg(params, &[7u8; 16], alg);
    let adrs: Vec<Address> = (0..count as u32)
        .map(|i| {
            let mut a = Address::new();
            a.set_type(AddressType::WotsHash);
            a.set_keypair(i / 64);
            a.set_chain(i % 64);
            a
        })
        .collect();
    let msgs: Vec<u8> = (0..count * n).map(|i| (i % 251) as u8).collect();
    let mut out = vec![0u8; count * n];

    // Equivalence gate before timing: the batched lane engine must agree
    // with the scalar sponge byte for byte.
    ctx.f_many(&adrs, &msgs, &mut out);
    for i in 0..count {
        assert_eq!(
            out[i * n..(i + 1) * n],
            ctx.f(&adrs[i], &msgs[i * n..(i + 1) * n])[..],
            "{alg:?}: batched f diverged at lane {i}"
        );
    }

    let scalar_start = Instant::now();
    for _ in 0..rounds {
        for i in 0..count {
            ctx.f_into(
                &adrs[i],
                &msgs[i * n..(i + 1) * n],
                &mut out[i * n..(i + 1) * n],
            );
        }
        std::hint::black_box(&mut out);
    }
    let scalar_secs = scalar_start.elapsed().as_secs_f64();

    let batched_start = Instant::now();
    for _ in 0..rounds {
        ctx.f_many(&adrs, &msgs, &mut out);
        std::hint::black_box(&mut out);
    }
    let batched_secs = batched_start.elapsed().as_secs_f64();

    let hashes = (count * rounds) as f64;
    HashCoreStats {
        scalar_hashes_per_sec: hashes / scalar_secs,
        batched_hashes_per_sec: hashes / batched_secs,
    }
}

/// One ISA tier's batched `F` throughput under the forced tier.
struct TierStats {
    tier: HashTier,
    hashes_per_sec: f64,
}

/// Times the batched `f_many` loop with the process-wide tier forced to
/// each tier in `tiers` (restoring dispatch afterwards), so the report
/// isolates the ISA effect on the same lane engine and workload.
fn measure_tier_cores(
    alg: HashAlg,
    tiers: &[HashTier],
    count: usize,
    rounds: usize,
) -> Vec<TierStats> {
    let params = Params::sphincs_128f();
    let n = params.n;
    let ctx = HashCtx::with_alg(params, &[7u8; 16], alg);
    let adrs: Vec<Address> = (0..count as u32)
        .map(|i| {
            let mut a = Address::new();
            a.set_type(AddressType::WotsHash);
            a.set_keypair(i / 64);
            a.set_chain(i % 64);
            a
        })
        .collect();
    let msgs: Vec<u8> = (0..count * n).map(|i| (i % 251) as u8).collect();
    let mut out = vec![0u8; count * n];

    tiers
        .iter()
        .map(|&t| {
            let prev = tier::force_tier(t);
            ctx.f_many(&adrs, &msgs, &mut out); // warmup under the forced tier
            let start = Instant::now();
            for _ in 0..rounds {
                ctx.f_many(&adrs, &msgs, &mut out);
                std::hint::black_box(&mut out);
            }
            let secs = start.elapsed().as_secs_f64();
            tier::restore_tier(prev);
            TierStats {
                tier: t,
                hashes_per_sec: (count * rounds) as f64 / secs,
            }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_hot_path.json".to_string());

    let params = if smoke {
        let mut p = Params::sphincs_128f();
        p.h = 6;
        p.d = 3;
        p.log_t = 6;
        p.k = 8;
        p
    } else {
        Params::sphincs_128f()
    };
    let iters: usize = flag("--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1 } else { 10 });
    // Smoke shrinks h/d/log_t/k but params.name() still says 128f; label
    // the artifact so reduced numbers are never read as full-set ones.
    let params_label = if smoke {
        format!("{} (reduced smoke shape)", params.name())
    } else {
        params.name().to_string()
    };

    let n = params.n;
    let (sk, _) = keygen_from_seeds(
        params,
        (0..n as u8).collect(),
        (50..50 + n as u8).collect(),
        (100..100 + n as u8).collect(),
    );

    // Correctness gate before timing anything: both paths must agree.
    let probe = b"hot path equivalence probe";
    assert_eq!(
        hero_bench::baseline::sign(&sk, probe),
        sk.sign(probe),
        "scalar baseline and batched signer disagree"
    );

    println!(
        "bench_hot_path: {params_label} ({iters} iters{})",
        if smoke { ", smoke" } else { "" }
    );
    println!("  hash tiers      : {}", tier::description());

    let scalar = measure(|m| hero_bench::baseline::sign(&sk, m), iters);
    let batched = measure(|m| sk.sign(m), iters);

    // Hash cores in isolation: the SHA-256 and SHAKE-256 lane engines
    // against their scalar counterparts on the leaf-hash workload.
    let (core_count, core_rounds) = if smoke { (512, 20) } else { (2048, 200) };
    let sha_core = measure_hash_core(HashAlg::Sha256, core_count, core_rounds);
    let shake_core = measure_hash_core(HashAlg::Shake256, core_count, core_rounds);

    // Per-tier sections: every rung of each primitive's ladder the host
    // supports, timed on the same batched workload under a forced tier.
    let sha_tiers = measure_tier_cores(
        HashAlg::Sha256,
        &tier::supported_sha256_tiers(),
        core_count,
        core_rounds,
    );
    let shake_tiers = measure_tier_cores(
        HashAlg::Shake256,
        &tier::supported_keccak_tiers(),
        core_count,
        core_rounds,
    );

    let speedup = batched.msgs_per_sec / scalar.msgs_per_sec;
    let compressions = hero_sign::workload::total_sign_compressions(&params) as f64;
    let compressions_per_sec = compressions * batched.msgs_per_sec;

    println!("  scalar baseline : {:>10.2} msgs/sec", scalar.msgs_per_sec);
    println!(
        "  batched hot path: {:>10.2} msgs/sec",
        batched.msgs_per_sec
    );
    println!("  speedup         : {speedup:>10.2}x");
    println!("  compressions/sec: {compressions_per_sec:>10.3e}");
    println!(
        "  allocs/sign     : {:>10.1} (scalar {:.1})",
        batched.allocs_per_sign, scalar.allocs_per_sign
    );
    for (name, core) in [("sha256", &sha_core), ("shake256", &shake_core)] {
        println!(
            "  {name:<8} F core : {:>10.3e} scalar, {:>10.3e} multi-lane hashes/sec ({:.2}x)",
            core.scalar_hashes_per_sec,
            core.batched_hashes_per_sec,
            core.speedup(),
        );
    }
    for (name, tiers) in [("sha256", &sha_tiers), ("shake256", &shake_tiers)] {
        let scalar_rate = tiers
            .iter()
            .find(|t| t.tier == HashTier::Scalar)
            .map(|t| t.hashes_per_sec)
            .expect("scalar tier is always supported");
        for t in tiers {
            println!(
                "  {name:<8} tier {:<7}: {:>10.3e} hashes/sec ({:.2}x vs scalar tier)",
                t.tier.label(),
                t.hashes_per_sec,
                t.hashes_per_sec / scalar_rate,
            );
        }
    }

    // Gate 1 — dispatch never loses to the scalar tier. The resolved
    // tier runs the same batched engine, so anything below ~1x means the
    // ladder picked a loser; 0.9 absorbs single-core timer noise (the
    // real margins are 2-4x).
    for (primitive, alg_name, tiers) in [
        (Primitive::Sha256, "sha256", &sha_tiers),
        (Primitive::Keccak, "shake256", &shake_tiers),
    ] {
        let dispatch = match primitive {
            Primitive::Sha256 => tier::sha256_tier(),
            Primitive::Keccak => tier::keccak_tier(),
        };
        let rate_of = |wanted: HashTier| {
            tiers
                .iter()
                .find(|t| t.tier == wanted)
                .map(|t| t.hashes_per_sec)
        };
        let dispatch_rate = rate_of(dispatch).expect("dispatched tier is supported");
        let scalar_rate = rate_of(HashTier::Scalar).expect("scalar tier is always supported");
        assert!(
            dispatch_rate >= 0.9 * scalar_rate,
            "{alg_name}: dispatched tier {} ({dispatch_rate:.3e} hashes/sec) lost to \
             the scalar tier ({scalar_rate:.3e})",
            dispatch.label()
        );
        // Gate 2 — on hosts with a rung above AVX2, that rung must beat
        // the AVX2 baseline for its primitive (the issue's acceptance
        // bar). Smoke runs keep a noise guard instead of the strict bar.
        let min_ratio = if smoke { 0.9 } else { 1.0 };
        if let Some(avx2_rate) = rate_of(HashTier::Avx2) {
            let top = tiers.first().expect("supported tiers are non-empty");
            if top.tier != HashTier::Avx2 && top.tier != HashTier::Scalar {
                assert!(
                    top.hashes_per_sec > min_ratio * avx2_rate,
                    "{alg_name}: top tier {} ({:.3e} hashes/sec) did not beat the \
                     AVX2 baseline ({avx2_rate:.3e})",
                    top.tier.label(),
                    top.hashes_per_sec
                );
            }
        }
    }

    let tier_section_json = |dispatch: HashTier, tiers: &[TierStats]| {
        let scalar_rate = tiers
            .iter()
            .find(|t| t.tier == HashTier::Scalar)
            .map(|t| t.hashes_per_sec)
            .expect("scalar tier is always supported");
        let rows: Vec<String> = tiers
            .iter()
            .map(|t| {
                format!(
                    "      {{\"tier\": \"{}\", \"hashes_per_sec\": {:.3}, \
                     \"speedup_vs_scalar_tier\": {:.3}}}",
                    t.tier.label(),
                    t.hashes_per_sec,
                    t.hashes_per_sec / scalar_rate,
                )
            })
            .collect();
        format!(
            "{{\n    \"dispatch\": \"{}\",\n    \"per_tier\": [\n{}\n    ]\n  }}",
            dispatch.label(),
            rows.join(",\n"),
        )
    };
    let hash_core_json = |core: &HashCoreStats| {
        format!(
            "{{\n    \"scalar_hashes_per_sec\": {:.3},\n    \
             \"multi_lane_hashes_per_sec\": {:.3},\n    \
             \"multi_lane_speedup\": {:.3}\n  }}",
            core.scalar_hashes_per_sec,
            core.batched_hashes_per_sec,
            core.speedup(),
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"hot_path\",\n  \"params\": \"{}\",\n  \"smoke\": {},\n  \"iters\": {},\n  \"baseline_scalar\": {{\n    \"msgs_per_sec\": {:.3},\n    \"allocs_per_sign\": {:.1},\n    \"alloc_bytes_per_sign\": {:.1}\n  }},\n  \"batched\": {{\n    \"msgs_per_sec\": {:.3},\n    \"allocs_per_sign\": {:.1},\n    \"alloc_bytes_per_sign\": {:.1}\n  }},\n  \"speedup_vs_baseline\": {:.3},\n  \"compressions_per_sign\": {},\n  \"compressions_per_sec\": {:.3e},\n  \"hash_core_sha256\": {},\n  \"hash_core_shake256\": {},\n  \"hash_tiers_sha256\": {},\n  \"hash_tiers_keccak\": {},\n  \"tier_gates\": {{\"dispatch_never_loses_to_scalar\": true, \"top_tier_beats_avx2_where_present\": true}},\n  \"signatures_byte_identical\": true\n}}\n",
        params_label,
        smoke,
        iters,
        scalar.msgs_per_sec,
        scalar.allocs_per_sign,
        scalar.alloc_bytes_per_sign,
        batched.msgs_per_sec,
        batched.allocs_per_sign,
        batched.alloc_bytes_per_sign,
        speedup,
        compressions as u64,
        compressions_per_sec,
        hash_core_json(&sha_core),
        hash_core_json(&shake_core),
        tier_section_json(tier::sha256_tier(), &sha_tiers),
        tier_section_json(tier::keccak_tier(), &shake_tiers),
    );
    // Remaining batched-path allocations are the Vec-based Signature
    // output structure (one Vec per revealed node/auth sibling), not the
    // hashing loop; the JSON keeps both counts so the trajectory is
    // honest about where the floor is.
    std::fs::write(&out_path, json).expect("write bench json");
    println!("  wrote {out_path}");
}
