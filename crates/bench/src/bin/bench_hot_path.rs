//! Hot-path trajectory bench: batched vs scalar signing.
//!
//! Measures end-to-end single-message `sign` throughput for the batched
//! multi-lane implementation against the preserved scalar baseline
//! (`hero_bench::baseline`), plus compressions/sec and
//! allocations-per-sign via a counting global allocator, and writes the
//! results to `BENCH_hot_path.json` so future PRs have a perf baseline.
//!
//! ```text
//! bench_hot_path [--smoke] [--iters N] [--out PATH]
//! ```
//!
//! `--smoke` runs one iteration on reduced parameters (CI keeps the bench
//! runnable without paying full-parameter signing time).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use hero_sphincs::params::Params;
use hero_sphincs::sign::keygen_from_seeds;

/// Counts every heap allocation so the bench can report
/// allocations-per-sign for both paths.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to the system allocator; the counters are
// monotonic and never influence allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOC_COUNT.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

struct PathStats {
    msgs_per_sec: f64,
    allocs_per_sign: f64,
    alloc_bytes_per_sign: f64,
}

/// Times `iters` signs of distinct messages, counting allocations, after
/// one warmup sign.
fn measure(sign: impl Fn(&[u8]) -> hero_sphincs::Signature, iters: usize) -> PathStats {
    std::hint::black_box(sign(b"warmup"));
    let (allocs0, bytes0) = alloc_snapshot();
    let start = Instant::now();
    for i in 0..iters {
        let msg = [i as u8; 32];
        std::hint::black_box(sign(&msg));
    }
    let elapsed = start.elapsed().as_secs_f64();
    let (allocs1, bytes1) = alloc_snapshot();
    PathStats {
        msgs_per_sec: iters as f64 / elapsed,
        allocs_per_sign: (allocs1 - allocs0) as f64 / iters as f64,
        alloc_bytes_per_sign: (bytes1 - bytes0) as f64 / iters as f64,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_hot_path.json".to_string());

    let params = if smoke {
        let mut p = Params::sphincs_128f();
        p.h = 6;
        p.d = 3;
        p.log_t = 6;
        p.k = 8;
        p
    } else {
        Params::sphincs_128f()
    };
    let iters: usize = flag("--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1 } else { 10 });
    // Smoke shrinks h/d/log_t/k but params.name() still says 128f; label
    // the artifact so reduced numbers are never read as full-set ones.
    let params_label = if smoke {
        format!("{} (reduced smoke shape)", params.name())
    } else {
        params.name().to_string()
    };

    let n = params.n;
    let (sk, _) = keygen_from_seeds(
        params,
        (0..n as u8).collect(),
        (50..50 + n as u8).collect(),
        (100..100 + n as u8).collect(),
    );

    // Correctness gate before timing anything: both paths must agree.
    let probe = b"hot path equivalence probe";
    assert_eq!(
        hero_bench::baseline::sign(&sk, probe),
        sk.sign(probe),
        "scalar baseline and batched signer disagree"
    );

    println!(
        "bench_hot_path: {params_label} ({iters} iters{})",
        if smoke { ", smoke" } else { "" }
    );

    let scalar = measure(|m| hero_bench::baseline::sign(&sk, m), iters);
    let batched = measure(|m| sk.sign(m), iters);

    let speedup = batched.msgs_per_sec / scalar.msgs_per_sec;
    let compressions = hero_sign::workload::total_sign_compressions(&params) as f64;
    let compressions_per_sec = compressions * batched.msgs_per_sec;

    println!("  scalar baseline : {:>10.2} msgs/sec", scalar.msgs_per_sec);
    println!(
        "  batched hot path: {:>10.2} msgs/sec",
        batched.msgs_per_sec
    );
    println!("  speedup         : {speedup:>10.2}x");
    println!("  compressions/sec: {compressions_per_sec:>10.3e}");
    println!(
        "  allocs/sign     : {:>10.1} (scalar {:.1})",
        batched.allocs_per_sign, scalar.allocs_per_sign
    );

    let json = format!(
        "{{\n  \"bench\": \"hot_path\",\n  \"params\": \"{}\",\n  \"smoke\": {},\n  \"iters\": {},\n  \"baseline_scalar\": {{\n    \"msgs_per_sec\": {:.3},\n    \"allocs_per_sign\": {:.1},\n    \"alloc_bytes_per_sign\": {:.1}\n  }},\n  \"batched\": {{\n    \"msgs_per_sec\": {:.3},\n    \"allocs_per_sign\": {:.1},\n    \"alloc_bytes_per_sign\": {:.1}\n  }},\n  \"speedup_vs_baseline\": {:.3},\n  \"compressions_per_sign\": {},\n  \"compressions_per_sec\": {:.3e},\n  \"signatures_byte_identical\": true\n}}\n",
        params_label,
        smoke,
        iters,
        scalar.msgs_per_sec,
        scalar.allocs_per_sign,
        scalar.alloc_bytes_per_sign,
        batched.msgs_per_sec,
        batched.allocs_per_sign,
        batched.alloc_bytes_per_sign,
        speedup,
        compressions as u64,
        compressions_per_sec,
    );
    // Remaining batched-path allocations are the Vec-based Signature
    // output structure (one Vec per revealed node/auth sibling), not the
    // hashing loop; the JSON keeps both counts so the trajectory is
    // honest about where the floor is.
    std::fs::write(&out_path, json).expect("write bench json");
    println!("  wrote {out_path}");
}
