//! Regenerates **Figure 13**: baseline vs HERO-Sign (with graph)
//! throughput across block (batch) sizes 2–1024 on the RTX 4090.
//!
//! §IV-E1's guidance should emerge: speedups are largest at small block
//! sizes (the baseline's serialized FORS rounds and per-kernel overheads
//! dominate tiny launches), and ≥512 maximizes absolute throughput.

use hero_bench::{fmt_x, header, paper, primary_device, rule};
use hero_sign::engine::{HeroSigner, OptConfig, PipelineOptions};
use hero_sphincs::params::Params;

const MESSAGES: u32 = 1024;

fn main() {
    let device = primary_device();
    header(
        "Figure 13",
        "Throughput vs block size: baseline vs HERO-Sign (with graph), 1024 msgs",
    );

    for (i, p) in Params::fast_sets().iter().enumerate() {
        let baseline = HeroSigner::baseline(device.clone(), *p).unwrap();
        let mut hero_cfg = OptConfig::hero();
        hero_cfg.graph = true;
        let hero = HeroSigner::builder(device.clone(), *p)
            .config(hero_cfg)
            .build()
            .unwrap();

        println!("\n{}:", p.name());
        println!(
            "  {:<10} {:>12} {:>12} {:>9}",
            "BlockSize", "Base KOPS", "HERO KOPS", "Speedup"
        );
        rule(50);
        let mut small_block_max = 0.0f64;
        let mut at_64 = 0.0f64;
        for bs in [2u32, 4, 8, 16, 32, 64, 128, 256, 512, 1024] {
            // Small batches need many concurrent streams/graphs to keep
            // the device fed (§III-F's block-based multi-graph strategy).
            let streams = (MESSAGES / bs).clamp(4, 64) as usize;
            let b = baseline
                .simulate(
                    PipelineOptions::new(MESSAGES)
                        .batch_size(bs)
                        .streams(streams),
                )
                .unwrap();
            let h = hero
                .simulate(
                    PipelineOptions::new(MESSAGES)
                        .batch_size(bs)
                        .streams(streams),
                )
                .unwrap();
            let speedup = h.kops / b.kops;
            if bs <= 64 {
                small_block_max = small_block_max.max(speedup);
            }
            if bs == 64 {
                at_64 = speedup;
            }
            println!(
                "  {:<10} {:>12.2} {:>12.2} {:>9}",
                bs,
                b.kops,
                h.kops,
                fmt_x(speedup)
            );
        }
        let (paper_max, paper_64) = paper::FIG13_SMALL_BLOCK_SPEEDUP[i];
        println!(
            "  small-block speedup: max {} (paper {paper_max}x), at 64 {} (paper {paper_64}x)",
            fmt_x(small_block_max),
            fmt_x(at_64)
        );
    }
    println!();
    println!("Shape checks: speedup decays as block size approaches device limits;");
    println!("absolute HERO throughput is maximized at block sizes >= 512 (§IV-E1).");
}
