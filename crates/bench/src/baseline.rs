//! The pre-batching scalar signing path, preserved for benchmarking.
//!
//! This module replays the seed-era implementation shape: every hash goes
//! through the scalar single-call `Vec<u8>` APIs, Merkle levels are
//! `Vec<Vec<u8>>`, and WOTS+ chains advance one `F` at a time. It is the
//! *pre-PR baseline* that `bench_hot_path` measures at runtime so
//! `BENCH_hot_path.json` records an honest batched-vs-scalar ratio on the
//! machine running the bench, and it doubles as a correctness oracle:
//! [`sign`] must produce byte-identical signatures to the batched
//! [`hero_sphincs::sign::SigningKey::sign`].

use hero_sphincs::address::{Address, AddressType};
use hero_sphincs::fors::{self, ForsSignature, ForsTreeSig};
use hero_sphincs::hash::{self, HashCtx};
use hero_sphincs::hypertree::{HtSignature, XmssSig};
use hero_sphincs::sign::{Signature, SigningKey};
use hero_sphincs::wots;

/// Scalar WOTS+ chain: one allocating `F` call per step (the seed shape).
fn chain(ctx: &HashCtx, x: &[u8], start: u32, steps: u32, adrs: &mut Address) -> Vec<u8> {
    let mut value = x.to_vec();
    for i in start..start + steps {
        adrs.set_hash(i);
        value = ctx.f(adrs, &value);
    }
    value
}

/// Scalar `wots_gen_leaf`: chains sequential, ends collected in
/// `Vec<Vec<u8>>`, compressed with the borrowing `T_l`.
fn wots_pk_gen(ctx: &HashCtx, sk_seed: &[u8], adrs: &Address) -> Vec<u8> {
    let params = *ctx.params();
    let mut chain_ends = Vec::with_capacity(params.wots_len());
    let mut hash_adrs = *adrs;
    hash_adrs.set_type(AddressType::WotsHash);
    hash_adrs.set_keypair(adrs.keypair());
    for i in 0..params.wots_len() as u32 {
        let sk = wots::sk_element(ctx, sk_seed, adrs, i);
        hash_adrs.set_chain(i);
        chain_ends.push(chain(ctx, &sk, 0, params.w as u32 - 1, &mut hash_adrs));
    }
    let mut pk_adrs = *adrs;
    pk_adrs.set_type(AddressType::WotsPk);
    pk_adrs.set_keypair(adrs.keypair());
    let parts: Vec<&[u8]> = chain_ends.iter().map(Vec::as_slice).collect();
    ctx.t_l(&pk_adrs, &parts)
}

fn wots_sign(ctx: &HashCtx, msg: &[u8], sk_seed: &[u8], adrs: &Address) -> Vec<Vec<u8>> {
    let params = *ctx.params();
    let lengths = wots::chain_lengths(&params, msg);
    let mut hash_adrs = *adrs;
    hash_adrs.set_type(AddressType::WotsHash);
    hash_adrs.set_keypair(adrs.keypair());
    lengths
        .iter()
        .enumerate()
        .map(|(i, &steps)| {
            let sk = wots::sk_element(ctx, sk_seed, adrs, i as u32);
            hash_adrs.set_chain(i as u32);
            chain(ctx, &sk, 0, steps, &mut hash_adrs)
        })
        .collect()
}

/// Scalar treehash over `Vec<Vec<u8>>` levels, rebuilding each level with
/// per-node `H` calls and cloning auth-path siblings (the seed shape).
fn treehash<F>(
    ctx: &HashCtx,
    height: usize,
    leaf_idx: u32,
    node_adrs: &Address,
    leaf_offset: u32,
    mut leaf_fn: F,
) -> (Vec<u8>, Vec<Vec<u8>>)
where
    F: FnMut(u32) -> Vec<u8>,
{
    let num_leaves = 1usize << height;
    let mut level: Vec<Vec<u8>> = (0..num_leaves as u32).map(&mut leaf_fn).collect();
    let mut auth_path = Vec::with_capacity(height);
    let mut idx = leaf_idx;
    let mut adrs = *node_adrs;
    for level_height in 1..=height {
        auth_path.push(level[(idx ^ 1) as usize].clone());
        adrs.set_tree_height(level_height as u32);
        let level_offset = leaf_offset >> level_height;
        level = (0..level.len() / 2)
            .map(|i| {
                adrs.set_tree_index(level_offset + i as u32);
                ctx.h(&adrs, &level[2 * i], &level[2 * i + 1])
            })
            .collect();
        idx >>= 1;
    }
    (level.pop().expect("root"), auth_path)
}

fn fors_sign(
    ctx: &HashCtx,
    md: &[u8],
    sk_seed: &[u8],
    keypair_adrs: &Address,
) -> (ForsSignature, Vec<u8>) {
    let params = *ctx.params();
    let indices = fors::message_to_indices(&params, md);
    let mut trees = Vec::with_capacity(params.k);
    let mut roots: Vec<Vec<u8>> = Vec::with_capacity(params.k);
    for (tree_idx, &leaf_idx) in indices.iter().enumerate() {
        let tree_idx = tree_idx as u32;
        let sk = fors::sk_element(ctx, sk_seed, keypair_adrs, tree_idx, leaf_idx);
        let mut node_adrs = Address::new();
        node_adrs.copy_subtree_from(keypair_adrs);
        node_adrs.set_type(AddressType::ForsTree);
        node_adrs.set_keypair(keypair_adrs.keypair());
        let leaf_offset = tree_idx * params.t() as u32;
        let (root, auth_path) =
            treehash(ctx, params.log_t, leaf_idx, &node_adrs, leaf_offset, |i| {
                fors::leaf(ctx, sk_seed, keypair_adrs, tree_idx, i)
            });
        trees.push(ForsTreeSig { sk, auth_path });
        roots.push(root);
    }
    let mut roots_adrs = Address::new();
    roots_adrs.copy_subtree_from(keypair_adrs);
    roots_adrs.set_type(AddressType::ForsRoots);
    roots_adrs.set_keypair(keypair_adrs.keypair());
    let parts: Vec<&[u8]> = roots.iter().map(Vec::as_slice).collect();
    let pk = ctx.t_l(&roots_adrs, &parts);
    (ForsSignature { trees }, pk)
}

fn ht_sign(
    ctx: &HashCtx,
    msg: &[u8],
    sk_seed: &[u8],
    mut tree_idx: u64,
    mut leaf_idx: u32,
) -> HtSignature {
    let params = *ctx.params();
    let mut layers = Vec::with_capacity(params.d);
    let mut root = msg.to_vec();
    for layer in 0..params.d as u32 {
        let mut wots_adrs = Address::new();
        wots_adrs.set_layer(layer);
        wots_adrs.set_tree(tree_idx);
        wots_adrs.set_type(AddressType::WotsHash);
        wots_adrs.set_keypair(leaf_idx);
        let wots_sig = wots_sign(ctx, &root, sk_seed, &wots_adrs);

        let mut node_adrs = Address::new();
        node_adrs.set_layer(layer);
        node_adrs.set_tree(tree_idx);
        node_adrs.set_type(AddressType::Tree);
        let (new_root, auth_path) =
            treehash(ctx, params.tree_height(), leaf_idx, &node_adrs, 0, |i| {
                let mut adrs = Address::new();
                adrs.set_layer(layer);
                adrs.set_tree(tree_idx);
                adrs.set_type(AddressType::WotsHash);
                adrs.set_keypair(i);
                wots_pk_gen(ctx, sk_seed, &adrs)
            });
        layers.push(XmssSig {
            wots_sig,
            auth_path,
        });
        root = new_root;
        leaf_idx = (tree_idx & ((1 << params.tree_height()) - 1)) as u32;
        tree_idx >>= params.tree_height();
    }
    HtSignature { layers }
}

/// Signs `msg` with the scalar pre-batching path. Byte-identical to
/// [`SigningKey::sign`] (asserted by `bench_hot_path` and tests).
pub fn sign(sk: &SigningKey, msg: &[u8]) -> Signature {
    let params = *sk.params();
    let ctx = HashCtx::with_alg(params, sk.pk_seed(), sk.alg());
    let randomizer = ctx.prf_msg(sk.sk_prf(), sk.pk_seed(), msg);
    let digest = ctx.h_msg(&randomizer, sk.pk_root(), msg);
    let (md, tree_idx, leaf_idx) = hash::split_digest(&params, &digest);

    let mut keypair_adrs = Address::new();
    keypair_adrs.set_layer(0);
    keypair_adrs.set_tree(tree_idx);
    keypair_adrs.set_type(AddressType::ForsTree);
    keypair_adrs.set_keypair(leaf_idx);

    let (fors_sig, fors_pk) = fors_sign(&ctx, &md, sk.sk_seed(), &keypair_adrs);
    let ht_sig = ht_sign(&ctx, &fors_pk, sk.sk_seed(), tree_idx, leaf_idx);
    Signature {
        randomizer,
        fors: fors_sig,
        ht: ht_sig,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_sphincs::params::Params;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scalar_baseline_matches_batched_signer() {
        let mut params = Params::sphincs_128f();
        params.h = 6;
        params.d = 3;
        params.log_t = 4;
        params.k = 8;
        let mut rng = StdRng::seed_from_u64(31);
        let (sk, vk) = hero_sphincs::keygen(params, &mut rng).unwrap();
        let msg = b"baseline equivalence";
        let scalar = sign(&sk, msg);
        assert_eq!(scalar, sk.sign(msg));
        vk.verify(msg, &scalar).unwrap();
    }
}
