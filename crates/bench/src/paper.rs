//! The HERO-Sign paper's published measurements, kept verbatim so every
//! harness binary can print paper-vs-reproduction side by side.
//!
//! Indexing convention: `[0] = 128f, [1] = 192f, [2] = 256f`.

/// Table II — TCAS-SPHINCSp time breakdown (ms).
pub struct Table2Row {
    /// FORS phase (ms).
    pub fors_ms: f64,
    /// Idle time (ms).
    pub idle_ms: f64,
    /// MSS phase (ms).
    pub mss_ms: f64,
    /// WOTS+ phase (ms).
    pub wots_ms: f64,
}

/// Table II rows for 128f/192f/256f.
pub const TABLE2: [Table2Row; 3] = [
    Table2Row {
        fors_ms: 1.89,
        idle_ms: 2.27,
        mss_ms: 6.57,
        wots_ms: 0.93,
    },
    Table2Row {
        fors_ms: 7.75,
        idle_ms: 2.31,
        mss_ms: 10.06,
        wots_ms: 1.33,
    },
    Table2Row {
        fors_ms: 13.25,
        idle_ms: 2.29,
        mss_ms: 26.55,
        wots_ms: 1.47,
    },
];

/// Table III — baseline 128f per-kernel profile on RTX 4090:
/// (warp occupancy %, theoretical occupancy %, registers/thread)
/// for FORS / TREE / WOTS+.
pub const TABLE3: [(f64, f64, u32); 3] = [(17.0, 66.67, 64), (25.0, 25.0, 128), (46.0, 52.08, 72)];

/// Table IV — tuning-search winners on RTX 4090:
/// (smem utilization, thread utilization, F) for 128f and 192f.
pub const TABLE4: [(f64, f64, u32); 2] = [(0.6875, 0.6875, 3), (0.75, 0.75, 2)];

/// Table V — PTX selected? (FORS, TREE, WOTS+) per parameter set.
pub const TABLE5: [(bool, bool, bool); 3] = [
    (true, false, false),
    (true, false, false),
    (true, true, true),
];

/// Table VI — reduction bank conflicts, baseline (load, store) per set,
/// FORS_Sign with Block = 1; padded counts are (0|1, 0).
pub const TABLE6_FORS_BASELINE: [(u64, u64); 3] = [
    (22_099_968, 12_435_456),
    (64_152, 30_096),
    (400_960, 192_640),
];

/// Table VI — TREE_Sign baseline (load, store) conflicts.
pub const TABLE6_TREE_BASELINE: [(u64, u64); 3] = [(1_568, 704), (1_203, 408), (11_905, 5_377)];

/// Table VIII — kernel KOPS (baseline, HERO) per set for
/// FORS / TREE / WOTS+.
pub struct Table8Row {
    /// (baseline KOPS, hero KOPS).
    pub fors: (f64, f64),
    /// (baseline KOPS, hero KOPS).
    pub tree: (f64, f64),
    /// (baseline KOPS, hero KOPS).
    pub wots: (f64, f64),
}

/// Table VIII rows for 128f/192f/256f.
pub const TABLE8: [Table8Row; 3] = [
    Table8Row {
        fors: (442.9, 946.3),
        tree: (125.2, 157.7),
        wots: (2493.1, 4915.7),
    },
    Table8Row {
        fors: (128.9, 222.0),
        tree: (88.2, 93.6),
        wots: (1457.6, 2464.9),
    },
    Table8Row {
        fors: (66.6, 116.4),
        tree: (36.4, 44.9),
        wots: (776.8, 1570.9),
    },
];

/// Fig. 11 — FORS_Sign ablation KOPS per step
/// (Baseline, MMTP, +FS, +PTX, +HybridME, +FreeBank).
pub const FIG11: [[f64; 6]; 3] = [
    [442.9, 702.7, 721.8, 752.0, 915.9, 946.3],
    [128.9, 174.1, 178.6, 206.4, 219.1, 222.0],
    [66.6, 73.5, 91.9, 97.8, 106.7, 116.4],
];

/// Fig. 12 — full-pipeline KOPS: (baseline no graph, baseline with graph,
/// HERO no graph, HERO with graph).
pub const FIG12_KOPS: [[f64; 4]; 3] = [
    [93.17, 97.54, 116.48, 119.47],
    [51.18, 56.50, 60.94, 65.43],
    [23.93, 25.74, 31.28, 33.88],
];

/// Fig. 12 — kernel launch latency (µs): (baseline, HERO no graph,
/// HERO with graph).
pub const FIG12_LATENCY_US: [[f64; 3]; 3] = [
    [4_270.0, 308.06, 49.41],
    [4_439.0, 2_722.75, 42.97],
    [7_102.0, 5_025.00, 32.10],
];

/// Fig. 13 — end-to-end speedup ranges over block sizes 2–64:
/// (max speedup at small blocks, speedup at 64).
pub const FIG13_SMALL_BLOCK_SPEEDUP: [(f64, f64); 3] = [(3.10, 3.10), (2.92, 2.48), (2.60, 2.48)];

/// Fig. 14 — cross-architecture HERO-vs-baseline speedups
/// (Pascal, Volta, Turing, Ampere, Hopper) × (128f, 192f, 256f).
pub const FIG14_SPEEDUP: [[f64; 3]; 5] = [
    [1.17, 1.18, 1.24],
    [1.15, 1.20, 1.28],
    [1.42, 1.17, 1.41],
    [1.16, 1.34, 1.43],
    [1.33, 1.31, 1.88],
];

/// Table XI — average compile seconds (baseline, HERO).
pub const TABLE11: [(f64, f64); 3] = [(18.68, 14.61), (23.25, 21.72), (24.19, 19.18)];

/// §IV-E3 — input-size sensitivity average speedups per set.
pub const INPUT_SIZE_SPEEDUP: [f64; 3] = [1.30, 1.28, 1.45];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table8_speedups_match_headline() {
        // §IV-D: "up to 2.14×, 1.26× and 2.02× speedups in FORS_Sign,
        // TREE_Sign and WOTS+_Sign".
        let fors_max = TABLE8
            .iter()
            .map(|r| r.fors.1 / r.fors.0)
            .fold(0.0f64, f64::max);
        let tree_max = TABLE8
            .iter()
            .map(|r| r.tree.1 / r.tree.0)
            .fold(0.0f64, f64::max);
        let wots_max = TABLE8
            .iter()
            .map(|r| r.wots.1 / r.wots.0)
            .fold(0.0f64, f64::max);
        assert!((fors_max - 2.14).abs() < 0.01);
        assert!((tree_max - 1.26).abs() < 0.01);
        assert!((wots_max - 2.02).abs() < 0.01);
    }

    #[test]
    fn fig12_reduction_factors() {
        // 86.4×, 103.3×, 221.3× launch-latency reductions with graph.
        for (i, expect) in [86.4, 103.3, 221.3].iter().enumerate() {
            let ratio = FIG12_LATENCY_US[i][0] / FIG12_LATENCY_US[i][2];
            assert!((ratio - expect).abs() / expect < 0.01, "set {i}: {ratio}");
        }
    }
}
