//! Published comparator data for Tables IX and X.
//!
//! The paper compares against *published* FPGA/ASIC/AVX2 numbers rather
//! than re-running those systems; we encode the same constants. Sources:
//! Berthet et al. (IPDPSW'21, Xilinx XZU3EG), Amiet et al. (DSD'20,
//! Artix-7, SHAKE256), SPHINCSLET (TECS'25 ASIC), and the AVX2 rows of
//! Table X.

/// One cross-platform comparator entry (Table IX).
#[derive(Clone, Copy, Debug)]
pub struct PlatformEntry {
    /// System name.
    pub name: &'static str,
    /// Hash function used.
    pub hash: &'static str,
    /// Throughput in KOPS per parameter set (`None` = not supported).
    pub kops: [Option<f64>; 3],
    /// Power per signature in Watts (`None` = not reported).
    pub pps_watt: [Option<f64>; 3],
}

/// HERO-Sign's own Table IX row (RTX 4090).
pub const HERO_TABLE9: PlatformEntry = PlatformEntry {
    name: "HERO-Sign (RTX 4090)",
    hash: "SHA256",
    kops: [Some(119.47), Some(65.43), Some(33.88)],
    pps_watt: [Some(0.003), Some(0.002), Some(0.003)],
};

/// FPGA and ASIC comparators of Table IX.
pub const COMPARATORS: [PlatformEntry; 3] = [
    PlatformEntry {
        name: "Berthet et al. (FPGA XZU3EG)",
        hash: "SHA256",
        kops: [Some(0.016), None, Some(0.000_57)],
        pps_watt: [Some(0.4), None, Some(0.474)],
    },
    PlatformEntry {
        name: "Amiet et al. (FPGA Artix-7)",
        hash: "SHAKE256",
        kops: [Some(0.99), Some(0.85), Some(0.40)],
        pps_watt: [Some(9.76), Some(9.69), Some(9.80)],
    },
    PlatformEntry {
        name: "SPHINCSLET (ASIC)",
        hash: "SHA256",
        kops: [Some(0.52), Some(0.20), Some(0.10)],
        pps_watt: [None, None, None],
    },
];

/// Table X — published AVX2 CPU KOPS (single thread, 16 threads).
pub const AVX2_TABLE10: [(f64, f64); 3] = [(0.143, 0.828), (0.087, 0.560), (0.044, 0.356)];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_ratios_reproduce() {
        // §IV-D: vs Amiet et al.: 120.68×, 76.98×, 84.70×.
        let amiet = &COMPARATORS[1];
        for (i, expect) in [120.68, 76.98, 84.70].iter().enumerate() {
            let ratio = HERO_TABLE9.kops[i].unwrap() / amiet.kops[i].unwrap();
            assert!((ratio - expect).abs() / expect < 0.01, "set {i}: {ratio}");
        }
        // vs SPHINCSLET: 229.75×, 327.15×, 338.8×.
        let asic = &COMPARATORS[2];
        for (i, expect) in [229.75, 327.15, 338.8].iter().enumerate() {
            let ratio = HERO_TABLE9.kops[i].unwrap() / asic.kops[i].unwrap();
            assert!((ratio - expect).abs() / expect < 0.01, "set {i}: {ratio}");
        }
        // vs AVX2 16-thread: 144.29×, 116.84×, 95.17×.
        for (i, expect) in [144.29, 116.84, 95.17].iter().enumerate() {
            let ratio = HERO_TABLE9.kops[i].unwrap() / AVX2_TABLE10[i].1;
            assert!((ratio - expect).abs() / expect < 0.01, "set {i}: {ratio}");
        }
    }
}
