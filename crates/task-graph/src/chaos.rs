//! Chaos hook: the task-graph side of the workspace's fault-injection
//! seam.
//!
//! `hero-task-graph` sits at the bottom of the dependency stack, so it
//! cannot depend on the fault-schedule engine in `hero-core`. Instead it
//! exposes a single process-wide *hook*: higher layers install a callback
//! and the executor announces named **fault points** through [`at`] at
//! safe moments (top of the worker loop, outside every lock). The
//! installed callback decides what the point means — sleep to simulate a
//! stalled worker, panic to simulate a worker death, or nothing.
//!
//! When no hook is installed, [`at`] is one relaxed atomic load and a
//! predictable branch — cheap enough to leave in release builds, which is
//! the whole point: the chaos schedule exercises the *same* binary that
//! ships.
//!
//! ## Safety contract for hooks
//!
//! A hook may panic **only** at points documented as panic-safe (today:
//! [`WORKER_CLAIM`] and [`QUEUE_STALL`]). The executor guarantees those
//! points are announced while the worker holds no locks and has claimed
//! no node, so the panic kills the worker without stranding any
//! submission; the pool respawns the worker (see [`crate::executor`]).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Announced at the top of each worker-loop iteration, before the worker
/// claims any node and while it holds no locks. Panicking here kills the
/// worker cleanly; the pool respawns it.
pub const WORKER_CLAIM: &str = "executor.worker.claim";

/// Announced immediately after [`WORKER_CLAIM`], still lock-free and
/// claim-free (so panicking is tolerated here too). Intended for *delay*
/// injection: a stalled worker while the rest of the pool keeps draining.
pub const QUEUE_STALL: &str = "executor.queue.stall";

/// The installed callback. Receives the fault-point name.
pub type Hook = Arc<dyn Fn(&'static str) + Send + Sync>;

/// Fast-path gate: `true` only while a hook is installed.
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn slot() -> &'static RwLock<Option<Hook>> {
    static SLOT: OnceLock<RwLock<Option<Hook>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Installs `hook` process-wide, replacing any previous hook.
pub fn install(hook: Hook) {
    *slot().write().unwrap_or_else(|e| e.into_inner()) = Some(hook);
    ACTIVE.store(true, Ordering::Release);
}

/// Removes the installed hook; [`at`] returns to its no-op fast path.
pub fn clear() {
    ACTIVE.store(false, Ordering::Release);
    *slot().write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Whether a hook is currently installed.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Acquire)
}

/// Announces fault point `point`. No-op (one atomic load) when no hook
/// is installed.
#[inline]
pub fn at(point: &'static str) {
    if ACTIVE.load(Ordering::Acquire) {
        hit(point);
    }
}

#[cold]
fn hit(point: &'static str) {
    // Clone the Arc out so a long-running (or panicking) hook never
    // holds the slot lock.
    let hook = slot()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map(Arc::clone);
    if let Some(hook) = hook {
        hook(point);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;

    /// Hook installation is process-global; serialize tests that touch it.
    pub(crate) fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn at_is_noop_without_hook() {
        let _g = lock();
        clear();
        assert!(!active());
        at("some.point"); // must not panic or block
    }

    #[test]
    fn installed_hook_sees_points_and_clear_removes_it() {
        let _g = lock();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        install(Arc::new(move |p| {
            assert_eq!(p, "x.y");
            h.fetch_add(1, Ordering::Relaxed);
        }));
        assert!(active());
        at("x.y");
        at("x.y");
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        clear();
        at("x.y");
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }
}
