//! # hero-task-graph
//!
//! A CUDA-Graph-style task DAG executor (§III-F of the HERO-Sign paper),
//! with two faces:
//!
//! * **Analytic** — [`GraphBuilder`]/[`ExecutableGraph`] replay kernel
//!   nodes onto the simulated GPU timeline. Workflow mirrors CUDA Graphs:
//!   capture nodes with explicit dependencies,
//!   [`GraphBuilder::instantiate`] once (paying instantiation cost), then
//!   [`ExecutableGraph::launch`] repeatedly — one host-side launch fee for
//!   the whole DAG instead of one per kernel, which is where the paper's
//!   two-orders-of-magnitude launch latency reduction (221.3×) comes from.
//! * **Functional** — [`TaskGraph`] carries a real closure per node and
//!   runs on the persistent [`Executor`] worker pool with ready-queue
//!   scheduling: a node becomes runnable the instant its last
//!   dependency finishes, so independent work from *different* parts of
//!   the graph (in HERO-Sign: different messages of one signing batch)
//!   co-schedules and keeps every worker busy. The executor is
//!   submission-aware — several graphs run concurrently and their nodes
//!   interleave on the same workers, like kernels from different CUDA
//!   streams sharing SMs (see [`executor`]). This is what lets the
//!   `core::plan` batch planner drive actual signing through the same DAG
//!   shape the simulator launches.
//!
//! ```
//! use hero_gpu_sim::device::rtx_4090;
//! use hero_gpu_sim::stream::Timeline;
//! use hero_task_graph::GraphBuilder;
//!
//! let mut g = GraphBuilder::new();
//! let fors = g.kernel("FORS_Sign", 80.0, 64);
//! let tree = g.kernel("TREE_Sign", 120.0, 64);
//! let wots = g.kernel("WOTS+_Sign", 20.0, 64);
//! g.depends_on(wots, fors);
//! g.depends_on(wots, tree);
//! let exe = g.instantiate(&rtx_4090());
//! let mut tl = Timeline::new(rtx_4090());
//! let end = exe.launch(&mut tl, 0);
//! assert!(end >= 120.0 + 20.0);
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod executor;

pub use executor::Executor;

use hero_gpu_sim::device::DeviceProps;
use hero_gpu_sim::stream::{LaunchMode, Timeline};

/// Handle to a node inside a [`GraphBuilder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// One kernel node in the DAG.
#[derive(Clone, Debug)]
struct Node {
    name: String,
    duration_us: f64,
    sms_demand: u32,
    deps: Vec<NodeId>,
}

/// Errors from graph construction, instantiation, and execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// A dependency edge references an unknown node.
    UnknownNode,
    /// The dependency relation contains a cycle.
    CycleDetected,
    /// The graph has no nodes.
    Empty,
    /// An [`Executor`] was requested with zero worker threads.
    ZeroWorkers,
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::UnknownNode => f.write_str("dependency references unknown node"),
            GraphError::CycleDetected => f.write_str("task graph contains a cycle"),
            GraphError::Empty => f.write_str("task graph is empty"),
            GraphError::ZeroWorkers => f.write_str("executor needs at least one worker thread"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A task graph under construction (the "capture" phase).
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
}

impl GraphBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a kernel node with a simulated `duration_us` occupying
    /// `sms_demand` SMs. Returns its handle.
    pub fn kernel(&mut self, name: impl Into<String>, duration_us: f64, sms_demand: u32) -> NodeId {
        self.nodes.push(Node {
            name: name.into(),
            duration_us,
            sms_demand,
            deps: Vec::new(),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Declares that `node` must wait for `dep`.
    ///
    /// # Panics
    ///
    /// Panics if either handle is from a different builder (out of range).
    pub fn depends_on(&mut self, node: NodeId, dep: NodeId) {
        assert!(
            node.0 < self.nodes.len() && dep.0 < self.nodes.len(),
            "foreign node handle"
        );
        self.nodes[node.0].deps.push(dep);
    }

    /// Number of nodes captured so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the builder has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Validates and instantiates the graph for `device`
    /// (CUDA's `cudaGraphInstantiate`). Topologically sorts nodes and
    /// precomputes the launch schedule.
    ///
    /// # Panics
    ///
    /// Panics on an invalid graph; use [`GraphBuilder::try_instantiate`]
    /// for error handling.
    pub fn instantiate(self, device: &DeviceProps) -> ExecutableGraph {
        self.try_instantiate(device).expect("valid task graph")
    }

    /// Fallible [`GraphBuilder::instantiate`].
    ///
    /// # Errors
    ///
    /// [`GraphError::Empty`] for empty graphs, [`GraphError::CycleDetected`]
    /// if dependencies are cyclic.
    pub fn try_instantiate(self, device: &DeviceProps) -> Result<ExecutableGraph, GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        // Kahn topological sort.
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            for dep in &node.deps {
                if dep.0 >= n {
                    return Err(GraphError::UnknownNode);
                }
                indegree[i] += 1;
                dependents[dep.0].push(i);
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(i);
            for &j in &dependents[i] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    queue.push(j);
                }
            }
        }
        if order.len() != n {
            return Err(GraphError::CycleDetected);
        }
        Ok(ExecutableGraph {
            nodes: self.nodes,
            topo_order: order,
            instantiation_us: device.graph_launch_overhead_us,
            graph_launch_us: device.graph_launch_overhead_us,
        })
    }
}

/// An instantiated, repeatedly launchable task graph
/// (CUDA's `cudaGraphExec_t`).
#[derive(Clone, Debug)]
pub struct ExecutableGraph {
    nodes: Vec<Node>,
    topo_order: Vec<usize>,
    instantiation_us: f64,
    graph_launch_us: f64,
}

impl ExecutableGraph {
    /// Number of kernel nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes (never true post-instantiation).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// One-time instantiation cost (µs), excluded from Fig. 12's latency
    /// comparison as the paper does.
    pub fn instantiation_us(&self) -> f64 {
        self.instantiation_us
    }

    /// Replays the whole DAG onto `timeline`. `stream_idx` identifies the
    /// graph's stream group (one non-blocking group per graph, as §III-F's
    /// block-based strategy binds one graph per stream). Returns the
    /// completion time.
    ///
    /// Independent nodes run on distinct internal streams — ordering comes
    /// *only* from the DAG edges, matching CUDA Graph semantics. The host
    /// pays one graph-launch fee; per-node dispatch is driver-side and
    /// near-free ([`LaunchMode::Graph`]).
    pub fn launch(&self, timeline: &mut Timeline, stream_idx: usize) -> f64 {
        timeline.host_pay(self.graph_launch_us);
        let base = stream_idx * self.nodes.len();
        let mut finish = vec![0.0f64; self.nodes.len()];
        let mut makespan: f64 = 0.0;
        for &i in &self.topo_order {
            let node = &self.nodes[i];
            let stream = timeline.stream(base + i);
            let deps: Vec<f64> = node.deps.iter().map(|d| finish[d.0]).collect();
            let end = timeline.launch(
                node.name.clone(),
                stream,
                node.duration_us,
                node.sms_demand,
                LaunchMode::Graph,
                &deps,
            );
            finish[i] = end;
            makespan = makespan.max(end);
        }
        makespan
    }
}

/// A boxed node work closure.
type NodeFn<'a> = Box<dyn FnOnce() + Send + 'a>;

/// One functional node: the work closure plus its dependency edges.
pub(crate) struct TaskNode<'a> {
    pub(crate) run: NodeFn<'a>,
    pub(crate) deps: Vec<NodeId>,
}

/// A task DAG whose nodes carry real work: each node is a closure, each
/// edge a happens-before constraint. [`TaskGraph::execute`] runs the DAG
/// on `workers` threads with ready-queue scheduling — the functional twin
/// of [`ExecutableGraph::launch`], executing computation instead of
/// replaying simulated durations.
///
/// Nodes typically communicate through interior-mutable slots owned by
/// the caller (each node writes its output under a lock; dependents read
/// it once scheduled). The executor guarantees a node runs only after all
/// of its dependencies completed, on exactly one worker, exactly once.
///
/// ```
/// use hero_task_graph::TaskGraph;
/// use std::sync::Mutex;
///
/// let log = Mutex::new(Vec::new());
/// let mut g = TaskGraph::new();
/// let a = g.task(|| log.lock().unwrap().push("fors"));
/// let b = g.task(|| log.lock().unwrap().push("tree"));
/// let w = g.task(|| log.lock().unwrap().push("wots"));
/// g.depends_on(w, a);
/// g.depends_on(w, b);
/// g.execute(4).unwrap();
/// assert_eq!(log.into_inner().unwrap().last(), Some(&"wots"));
/// ```
#[derive(Default)]
pub struct TaskGraph<'a> {
    pub(crate) nodes: Vec<TaskNode<'a>>,
}

impl<'a> TaskGraph<'a> {
    /// Empty graph.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Adds a work node; returns its handle.
    pub fn task(&mut self, run: impl FnOnce() + Send + 'a) -> NodeId {
        self.nodes.push(TaskNode {
            run: Box::new(run),
            deps: Vec::new(),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Declares that `node` must wait for `dep`. Duplicate edges are
    /// permitted (and counted consistently).
    ///
    /// # Panics
    ///
    /// Panics if either handle is from a different graph (out of range).
    pub fn depends_on(&mut self, node: NodeId, dep: NodeId) {
        assert!(
            node.0 < self.nodes.len() && dep.0 < self.nodes.len(),
            "foreign node handle"
        );
        self.nodes[node.0].deps.push(dep);
    }

    /// Number of nodes captured so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Validates the DAG and executes every node on an ephemeral
    /// [`Executor`] of `workers` threads (clamped to the node count).
    ///
    /// This is the one-shot convenience face: it pays pool spin-up and
    /// tear-down on every call, exactly the cost the persistent
    /// [`Executor`] exists to amortize — long-lived callers (the
    /// HERO-Sign engine, services) hold an executor and
    /// [`Executor::run`] submissions onto it instead. An empty graph is
    /// a no-op.
    ///
    /// # Errors
    ///
    /// [`GraphError::CycleDetected`] if the dependency relation is cyclic
    /// (no node runs in that case).
    ///
    /// # Panics
    ///
    /// Propagates a panic raised inside a node closure — with its
    /// original payload — after the submission quiesces; remaining
    /// unstarted nodes are abandoned.
    pub fn execute(self, workers: usize) -> Result<(), GraphError> {
        if self.nodes.is_empty() {
            return Ok(());
        }
        let workers = workers.clamp(1, self.nodes.len());
        Executor::new(workers)?.run(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_gpu_sim::device::rtx_4090;

    fn diamond() -> GraphBuilder {
        // fors ─┐
        //       ├─> wots
        // tree ─┘
        let mut g = GraphBuilder::new();
        let fors = g.kernel("FORS_Sign", 80.0, 48);
        let tree = g.kernel("TREE_Sign", 120.0, 48);
        let wots = g.kernel("WOTS+_Sign", 20.0, 48);
        g.depends_on(wots, fors);
        g.depends_on(wots, tree);
        g
    }

    #[test]
    fn dependencies_respected() {
        let exe = diamond().instantiate(&rtx_4090());
        let mut tl = Timeline::new(rtx_4090());
        let end = exe.launch(&mut tl, 0);
        // WOTS starts only after the longer of FORS/TREE.
        assert!(end >= 140.0);
        let wots = tl
            .executed()
            .iter()
            .find(|k| k.name == "WOTS+_Sign")
            .unwrap();
        let tree = tl
            .executed()
            .iter()
            .find(|k| k.name == "TREE_Sign")
            .unwrap();
        assert!(wots.start_us >= tree.end_us);
    }

    #[test]
    fn independent_nodes_overlap() {
        let exe = diamond().instantiate(&rtx_4090());
        let mut tl = Timeline::new(rtx_4090());
        exe.launch(&mut tl, 0);
        let fors = tl
            .executed()
            .iter()
            .find(|k| k.name == "FORS_Sign")
            .unwrap();
        let tree = tl
            .executed()
            .iter()
            .find(|k| k.name == "TREE_Sign")
            .unwrap();
        // 48 + 48 SMs fit in 128: FORS and TREE overlap.
        assert!(fors.start_us < tree.end_us && tree.start_us < fors.end_us);
    }

    #[test]
    fn cycle_rejected() {
        let mut g = GraphBuilder::new();
        let a = g.kernel("a", 1.0, 1);
        let b = g.kernel("b", 1.0, 1);
        g.depends_on(a, b);
        g.depends_on(b, a);
        assert_eq!(
            g.try_instantiate(&rtx_4090()).unwrap_err(),
            GraphError::CycleDetected
        );
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            GraphBuilder::new()
                .try_instantiate(&rtx_4090())
                .unwrap_err(),
            GraphError::Empty
        );
    }

    #[test]
    fn graph_launch_overhead_beats_streams() {
        // 3 kernels × 100 batches: stream mode pays 300 launch fees, graph
        // mode pays 100 graph fees with near-free node dispatch.
        let device = rtx_4090();
        let exe = diamond().instantiate(&device);

        let mut graph_tl = Timeline::new(device.clone());
        for batch in 0..100 {
            exe.launch(&mut graph_tl, batch % 4);
        }

        let mut stream_tl = Timeline::new(device.clone());
        for batch in 0..100 {
            let s = stream_tl.stream(batch % 4);
            let f = stream_tl.launch("FORS_Sign", s, 80.0, 48, LaunchMode::Stream, &[]);
            let t = stream_tl.launch("TREE_Sign", s, 120.0, 48, LaunchMode::Stream, &[]);
            stream_tl.launch("WOTS+_Sign", s, 20.0, 48, LaunchMode::Stream, &[f, t]);
        }

        let graph_overhead = graph_tl.launch_overhead_total_us();
        let stream_overhead = stream_tl.launch_overhead_total_us();
        // A 3-node graph amortizes poorly (one graph fee vs 3 kernel
        // fees); the two-orders-of-magnitude wins of Fig. 12 come from
        // replaying one graph over many per-message stream launches —
        // tested at the engine level. Here: strictly cheaper and no
        // slower.
        assert!(
            stream_overhead / graph_overhead > 1.2,
            "graph {graph_overhead} vs stream {stream_overhead}"
        );
        // Makespans match within greedy-placement noise (both runs are
        // capacity-bound; the win here is host overhead, not makespan).
        assert!(graph_tl.makespan_us() <= stream_tl.makespan_us() * 1.02);
    }

    #[test]
    fn repeat_launches_accumulate() {
        let exe = diamond().instantiate(&rtx_4090());
        let mut tl = Timeline::new(rtx_4090());
        let first = exe.launch(&mut tl, 0);
        let second = exe.launch(&mut tl, 0);
        assert!(second > first);
        assert_eq!(tl.executed().len(), 6);
    }

    #[test]
    fn chain_order_is_serial() {
        let mut g = GraphBuilder::new();
        let mut prev = g.kernel("k0", 10.0, 8);
        for i in 1..5 {
            let k = g.kernel(format!("k{i}"), 10.0, 8);
            g.depends_on(k, prev);
            prev = k;
        }
        let exe = g.instantiate(&rtx_4090());
        let mut tl = Timeline::new(rtx_4090());
        let end = exe.launch(&mut tl, 0);
        assert!(end >= 50.0);
    }

    #[test]
    #[should_panic(expected = "foreign node handle")]
    fn foreign_handle_panics() {
        let mut g1 = GraphBuilder::new();
        let a = g1.kernel("a", 1.0, 1);
        let mut g2 = GraphBuilder::new();
        g2.depends_on(a, a);
    }

    mod functional {
        use super::*;
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;

        #[test]
        fn all_nodes_run_exactly_once() {
            for workers in [1usize, 2, 8] {
                let count = AtomicUsize::new(0);
                let mut g = TaskGraph::new();
                for _ in 0..100 {
                    g.task(|| {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                }
                g.execute(workers).unwrap();
                assert_eq!(count.into_inner(), 100, "workers={workers}");
            }
        }

        #[test]
        fn dependencies_order_execution() {
            // A chain a -> b -> c interleaved with free nodes: the chain's
            // recorded order must be a, b, c regardless of worker count.
            for workers in [1usize, 4] {
                let log = Mutex::new(Vec::new());
                let mut g = TaskGraph::new();
                let a = g.task(|| log.lock().unwrap().push('a'));
                for _ in 0..16 {
                    g.task(|| log.lock().unwrap().push('.'));
                }
                let b = g.task(|| log.lock().unwrap().push('b'));
                let c = g.task(|| log.lock().unwrap().push('c'));
                g.depends_on(b, a);
                g.depends_on(c, b);
                g.execute(workers).unwrap();
                let log = log.into_inner().unwrap();
                let pos = |ch| log.iter().position(|&x| x == ch).unwrap();
                assert!(pos('a') < pos('b') && pos('b') < pos('c'));
            }
        }

        #[test]
        fn diamond_joins_before_sink() {
            let stamp = AtomicUsize::new(0);
            let fors_done = AtomicUsize::new(0);
            let tree_done = AtomicUsize::new(0);
            let wots_saw = AtomicUsize::new(0);
            let mut g = TaskGraph::new();
            let f = g.task(|| {
                fors_done.store(stamp.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst)
            });
            let t = g.task(|| {
                tree_done.store(stamp.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst)
            });
            let w = g.task(|| {
                wots_saw.store(
                    fors_done
                        .load(Ordering::SeqCst)
                        .min(tree_done.load(Ordering::SeqCst)),
                    Ordering::SeqCst,
                )
            });
            g.depends_on(w, f);
            g.depends_on(w, t);
            g.execute(4).unwrap();
            // Both inputs had completed (nonzero stamps) when the sink ran.
            assert!(wots_saw.into_inner() > 0);
        }

        #[test]
        fn duplicate_edges_are_harmless() {
            let count = AtomicUsize::new(0);
            let mut g = TaskGraph::new();
            let a = g.task(|| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            let b = g.task(|| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            g.depends_on(b, a);
            g.depends_on(b, a);
            g.execute(2).unwrap();
            assert_eq!(count.into_inner(), 2);
        }

        #[test]
        fn functional_cycle_rejected_without_running() {
            let count = AtomicUsize::new(0);
            let mut g = TaskGraph::new();
            let a = g.task(|| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            let b = g.task(|| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            g.depends_on(a, b);
            g.depends_on(b, a);
            assert_eq!(g.execute(4).unwrap_err(), GraphError::CycleDetected);
            assert_eq!(count.into_inner(), 0);
        }

        #[test]
        fn empty_graph_is_noop() {
            TaskGraph::new().execute(8).unwrap();
        }

        #[test]
        fn node_panic_propagates_with_payload() {
            let mut g = TaskGraph::new();
            g.task(|| panic!("stage exploded"));
            for _ in 0..8 {
                g.task(|| {});
            }
            let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = g.execute(4);
            }))
            .expect_err("node panic must surface");
            // The original payload survives (not the generic
            // "a scoped thread panicked" of std::thread::scope).
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .expect("original payload type");
            assert_eq!(msg, "stage exploded");
        }

        #[test]
        fn outputs_flow_through_slots() {
            // The core::plan pattern in miniature: producers fill slots,
            // a dependent consumes them.
            let slots: Vec<Mutex<Option<u64>>> = (0..8).map(|_| Mutex::new(None)).collect();
            let sum = Mutex::new(0u64);
            let mut g = TaskGraph::new();
            let producers: Vec<NodeId> = (0..8)
                .map(|i| {
                    let slots = &slots;
                    g.task(move || *slots[i].lock().unwrap() = Some(i as u64 * 10))
                })
                .collect();
            let sink = g.task(|| {
                *sum.lock().unwrap() = slots
                    .iter()
                    .map(|s| s.lock().unwrap().expect("producer ran"))
                    .sum()
            });
            for p in producers {
                g.depends_on(sink, p);
            }
            g.execute(3).unwrap();
            assert_eq!(sum.into_inner().unwrap(), 280);
        }

        #[test]
        fn foreign_functional_handle_panics() {
            let mut g1 = TaskGraph::new();
            let a = g1.task(|| {});
            let mut g2 = TaskGraph::new();
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                g2.depends_on(a, a);
            }));
            assert!(r.is_err());
        }
    }
}
