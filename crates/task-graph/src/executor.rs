//! The persistent stream runtime: a long-lived [`Executor`] that accepts
//! whole [`TaskGraph`]s as *submissions* and runs several concurrently on
//! one shared pool of named worker threads.
//!
//! ## Why persistent
//!
//! HERO-Sign's throughput argument depends on the device never tearing
//! down between batches: streams and CUDA graphs exist so the *next*
//! batch's kernels are already queued while the current one drains. The
//! scoped-thread execution this module replaces behaved like a GPU that
//! powers off after every launch — each `TaskGraph::execute` paid thread
//! spin-up, and two concurrent callers serialized behind each other's
//! pools. The [`Executor`] is the CPU analogue of the persistent device:
//!
//! * **Workers ≙ SMs** — spawned once (`hero-worker-N`), alive until the
//!   executor drops, joined gracefully on shutdown.
//! * **Submissions ≙ streams** — every [`Executor::run`] call is an
//!   independent submission; ready work-items from *different*
//!   submissions interleave on the same workers, exactly like kernels
//!   from different CUDA streams sharing SMs.
//! * **Panic isolation ≙ per-stream error state** — a node panic poisons
//!   only its own submission (remaining nodes are cancelled, the payload
//!   re-raised on the submitting thread); other submissions and the
//!   workers themselves are unaffected, and the executor stays usable.
//!
//! ## Self-healing
//!
//! A worker thread that *dies* (a panic escaping the worker loop — in
//! practice only possible through the [`crate::chaos`] fault hook, since
//! node panics are caught and turned into submission poison) is detected
//! and respawned, so the pool always heals back to its configured size.
//! Worker deaths are injected at a documented panic-safe point: before
//! the worker claims a node and outside every lock, so a death can never
//! strand a submission or poison shared state. [`Executor::alive_workers`]
//! and [`Executor::respawned_workers`] expose the healing for tests and
//! metrics.
//!
//! ## Blocking and re-entrancy
//!
//! [`Executor::run`] blocks the calling thread until its submission
//! completes. When the caller *is* one of this executor's workers (a node
//! closure submitting a nested graph), the call participates in draining
//! the shared ready queue instead of parking — the pool can never
//! deadlock on its own nested submissions.

use crate::{chaos, GraphError, TaskGraph};

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// A node closure with its borrow lifetime erased. Safety contract: the
/// submission that owns it never outlives the [`Executor::run`] call that
/// created it — `run` returns only once every erased closure has been
/// executed or dropped and no worker still touches the submission's
/// slots (`running == 0`).
type ErasedFn = Box<dyn FnOnce() + Send + 'static>;

/// Locks `m`, recovering from poison. Every mutex in this module guards
/// state that is kept consistent across panics by construction (node
/// panics are caught before bookkeeping; injected worker deaths happen
/// outside all locks), so a poisoned lock carries no torn state — it
/// only means some thread died nearby. Propagating the poison would turn
/// one injected death into a cascade that kills the whole pool.
fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Mutable progress of one submission, guarded by [`Submission::progress`].
struct Progress {
    /// Nodes fully retired: executed, panicked, or cancelled by a poison
    /// purge. Only compared against `n` for *healthy* submissions.
    finished: usize,
    /// Nodes currently executing on some thread. Claimed under the pool
    /// queue lock so a poison purge can never miss an in-flight node.
    running: usize,
    /// Set once a node of this submission panicked; stops scheduling.
    poisoned: bool,
    /// First panic payload, re-raised on the submitting thread.
    payload: Option<Box<dyn Any + Send>>,
}

/// One in-flight [`TaskGraph`]: dependency bookkeeping plus the erased
/// node closures. Shared between the submitting thread and the workers.
struct Submission {
    n: usize,
    /// Unfinished-dependency counts; a node is enqueued when its count
    /// hits zero.
    pending: Vec<AtomicUsize>,
    dependents: Vec<Vec<usize>>,
    closures: Vec<Mutex<Option<ErasedFn>>>,
    progress: Mutex<Progress>,
    /// Signalled when the submission completes (or poisons to quiescence);
    /// the submitting thread waits here.
    finished_cv: Condvar,
}

impl Submission {
    /// Whether the submitting thread may safely return: nothing runs, and
    /// either every node retired or the submission is poisoned (in which
    /// case unreached nodes will never be scheduled — the queue was
    /// purged under the same lock that claims nodes).
    fn complete(p: &Progress, n: usize) -> bool {
        p.running == 0 && (p.poisoned || p.finished == n)
    }
}

/// The shared ready queue: `(submission, node)` pairs whose dependencies
/// are all satisfied, in FIFO order across submissions.
struct Queue {
    items: VecDeque<(Arc<Submission>, usize)>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Signalled when items are enqueued or shutdown begins.
    available: Condvar,
    /// Join handles of every live (or not-yet-joined) worker thread.
    /// Respawned workers push here; [`Executor::drop`] drains in a loop
    /// until no late respawn can add another.
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Workers currently running their loop (dips by one transiently
    /// while a dead worker's replacement spawns).
    alive: AtomicUsize,
    /// Total workers respawned after deaths, over the pool's lifetime.
    respawned: AtomicU64,
}

thread_local! {
    /// Identity of the pool the current thread works for (the `Shared`
    /// allocation address), or 0 off-pool. Lets nested [`Executor::run`]
    /// calls detect "I am one of this executor's workers" and help drain
    /// the queue instead of parking.
    static CURRENT_POOL: Cell<usize> = const { Cell::new(0) };
}

/// A persistent pool of named worker threads executing [`TaskGraph`]
/// submissions — see the module docs for the stream-runtime analogy.
///
/// Cheap handles are made by wrapping in [`Arc`]; every clone of the
/// `Arc` submits onto the same workers, the way multiple CUDA streams
/// share one device.
///
/// ```
/// use hero_task_graph::{Executor, TaskGraph};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = Executor::new(4).unwrap();
/// let hits = AtomicUsize::new(0);
/// let mut g = TaskGraph::new();
/// let a = g.task(|| { hits.fetch_add(1, Ordering::Relaxed); });
/// let b = g.task(|| { hits.fetch_add(1, Ordering::Relaxed); });
/// g.depends_on(b, a);
/// pool.run(g).unwrap();
/// assert_eq!(hits.into_inner(), 2);
/// // The pool survives the submission; submit again freely.
/// pool.run(TaskGraph::new()).unwrap();
/// ```
pub struct Executor {
    shared: Arc<Shared>,
    workers: usize,
    submitted: AtomicU64,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.workers)
            .field("alive", &self.alive_workers())
            .field("respawned", &self.respawned_workers())
            .field("submissions", &self.submitted.load(Ordering::Relaxed))
            .finish()
    }
}

/// Spawns one worker thread and registers its handle. `id` is reused by
/// a replacement worker so thread names stay within `hero-worker-0..N`.
fn spawn_worker(shared: &Arc<Shared>, id: usize) -> std::io::Result<()> {
    let for_thread = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("hero-worker-{id}"))
        .spawn(move || {
            let guard = RespawnGuard {
                shared: Arc::clone(&for_thread),
                id,
            };
            worker_loop(&for_thread);
            drop(guard);
        })?;
    shared.alive.fetch_add(1, Ordering::AcqRel);
    plock(&shared.handles).push(handle);
    Ok(())
}

/// Armed inside every worker thread. On drop it retires the worker from
/// the alive count; if the thread is *panicking* (a worker death, not a
/// shutdown) and the pool is not shutting down, it spawns a replacement —
/// this is the self-healing path.
struct RespawnGuard {
    shared: Arc<Shared>,
    id: usize,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        self.shared.alive.fetch_sub(1, Ordering::AcqRel);
        if !std::thread::panicking() {
            return; // graceful shutdown exit
        }
        // Checked under the queue lock — the same lock Executor::drop
        // sets `shutdown` under — so either we observe the shutdown and
        // stand down, or drop's handle-drain loop observes our pushed
        // replacement handle.
        if plock(&self.shared.queue).shutdown {
            return;
        }
        self.shared.respawned.fetch_add(1, Ordering::Relaxed);
        // Spawn failure (resource exhaustion) is unrecoverable from a
        // dying thread; the pool shrinks by one rather than aborting.
        let _ = spawn_worker(&self.shared, self.id);
    }
}

impl Executor {
    /// Spawns a persistent pool of `workers` named threads
    /// (`hero-worker-0` … `hero-worker-{N-1}`).
    ///
    /// # Errors
    ///
    /// [`GraphError::ZeroWorkers`] when `workers == 0` — a pool with no
    /// threads could never complete a submission.
    pub fn new(workers: usize) -> Result<Self, GraphError> {
        if workers == 0 {
            return Err(GraphError::ZeroWorkers);
        }
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                items: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            handles: Mutex::new(Vec::with_capacity(workers)),
            alive: AtomicUsize::new(0),
            respawned: AtomicU64::new(0),
        });
        for i in 0..workers {
            spawn_worker(&shared, i).expect("spawn executor worker thread");
        }
        Ok(Self {
            shared,
            workers,
            submitted: AtomicU64::new(0),
        })
    }

    /// Number of worker threads the pool is configured for (its healed
    /// steady-state size).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Workers currently running their loop. Equals [`Executor::workers`]
    /// in steady state; dips transiently while a dead worker's
    /// replacement spawns.
    pub fn alive_workers(&self) -> usize {
        self.shared.alive.load(Ordering::Acquire)
    }

    /// Total workers respawned after deaths over the pool's lifetime
    /// (zero unless fault injection — or a bug — killed a worker).
    pub fn respawned_workers(&self) -> u64 {
        self.shared.respawned.load(Ordering::Relaxed)
    }

    /// Submissions accepted over the executor's lifetime (for tests and
    /// observability).
    pub fn submissions(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Validates `graph` and executes every node on the shared worker
    /// pool, blocking until the submission completes. Concurrent `run`
    /// calls from different threads proceed as independent submissions
    /// whose ready nodes interleave on the same workers.
    ///
    /// An empty graph is a no-op. Called from one of this executor's own
    /// worker threads (a nested submission), the caller helps drain the
    /// queue instead of parking, so nesting cannot deadlock the pool.
    ///
    /// # Errors
    ///
    /// [`GraphError::CycleDetected`] if the dependency relation is cyclic
    /// (no node runs in that case).
    ///
    /// # Panics
    ///
    /// Re-raises the first panic from a node closure — with its original
    /// payload — once the submission has quiesced; remaining unstarted
    /// nodes of that submission are cancelled. Other submissions and the
    /// pool itself are unaffected.
    pub fn run(&self, graph: TaskGraph<'_>) -> Result<(), GraphError> {
        let nodes = graph.nodes;
        let n = nodes.len();
        if n == 0 {
            return Ok(());
        }

        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indegree = vec![0usize; n];
        for (i, node) in nodes.iter().enumerate() {
            for dep in &node.deps {
                indegree[i] += 1;
                dependents[dep.0].push(i);
            }
        }
        // Kahn dry-run on a copy: refuse cyclic graphs before any node runs.
        {
            let mut remaining = indegree.clone();
            let mut queue: Vec<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
            let mut seen = 0usize;
            while let Some(i) = queue.pop() {
                seen += 1;
                for &j in &dependents[i] {
                    remaining[j] -= 1;
                    if remaining[j] == 0 {
                        queue.push(j);
                    }
                }
            }
            if seen != n {
                return Err(GraphError::CycleDetected);
            }
        }

        let pending: Vec<AtomicUsize> = indegree.iter().copied().map(AtomicUsize::new).collect();
        let closures: Vec<Mutex<Option<ErasedFn>>> = nodes
            .into_iter()
            // SAFETY: the erased closure may borrow data with lifetime
            // 'a of the submitted graph. This function does not return
            // until `Submission::complete` holds — every closure was
            // executed or is dropped below, and `running == 0` proves no
            // worker still holds one — so no closure (or its captured
            // borrows) is ever touched after `run` returns.
            .map(|node| {
                Mutex::new(Some(unsafe {
                    std::mem::transmute::<
                        Box<dyn FnOnce() + Send + '_>,
                        Box<dyn FnOnce() + Send + 'static>,
                    >(node.run)
                }))
            })
            .collect();
        let sub = Arc::new(Submission {
            n,
            pending,
            dependents,
            closures,
            progress: Mutex::new(Progress {
                finished: 0,
                running: 0,
                poisoned: false,
                payload: None,
            }),
            finished_cv: Condvar::new(),
        });
        self.submitted.fetch_add(1, Ordering::Relaxed);

        {
            let mut q = plock(&self.shared.queue);
            for i in 0..n {
                if sub.pending[i].load(Ordering::Relaxed) == 0 {
                    q.items.push_back((Arc::clone(&sub), i));
                }
            }
        }
        self.shared.available.notify_all();

        let on_own_pool =
            CURRENT_POOL.with(|p| p.get()) == Arc::as_ptr(&self.shared) as *const () as usize;
        if on_own_pool {
            self.help_until_complete(&sub);
        } else {
            let mut p = plock(&sub.progress);
            while !Submission::complete(&p, sub.n) {
                p = sub
                    .finished_cv
                    .wait(p)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        // The submission has quiesced: drop closures cancelled by a
        // poison purge (their captured borrows die here, on the
        // submitting thread, while still alive) and re-raise any panic.
        let payload = plock(&sub.progress).payload.take();
        for slot in &sub.closures {
            drop(plock(slot).take());
        }
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
        Ok(())
    }

    /// Nested-submission wait: drain ready nodes (of any submission)
    /// until `sub` completes, so a worker blocking on its own pool keeps
    /// the pool making progress.
    fn help_until_complete(&self, sub: &Arc<Submission>) {
        loop {
            {
                let p = plock(&sub.progress);
                if Submission::complete(&p, sub.n) {
                    return;
                }
            }
            let item = {
                let mut q = plock(&self.shared.queue);
                claim_next(&mut q)
            };
            match item {
                Some((s, idx)) => run_node(&self.shared, &s, idx),
                None => {
                    // Our nodes are running on (or blocked behind) other
                    // workers; park briefly on the completion signal and
                    // re-poll the queue for late-ready work.
                    let p = plock(&sub.progress);
                    if Submission::complete(&p, sub.n) {
                        return;
                    }
                    let _ = sub
                        .finished_cv
                        .wait_timeout(p, Duration::from_micros(200))
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }
}

impl Drop for Executor {
    /// Graceful shutdown: signal, then join every worker — including
    /// replacements a dying worker spawns concurrently with this drop
    /// (the drain loop repeats until no handle is left, and the respawn
    /// guard checks `shutdown` under the queue lock before spawning).
    /// Callers hold no outstanding submissions at this point (`run`
    /// borrows the executor for its full duration), so the queue is
    /// already empty.
    fn drop(&mut self) {
        {
            let mut q = plock(&self.shared.queue);
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        loop {
            let batch: Vec<JoinHandle<()>> = {
                let mut handles = plock(&self.shared.handles);
                handles.drain(..).collect()
            };
            if batch.is_empty() {
                return;
            }
            for t in batch {
                let _ = t.join();
            }
        }
    }
}

/// Pops the next runnable node, claiming it (`running += 1`) under the
/// queue lock — the same lock a poison purge holds — so a purge observes
/// either "still queued" (and removes it) or "already running" (and
/// waits for it via the `running` count). Skips nodes of already
/// poisoned submissions.
fn claim_next(q: &mut Queue) -> Option<(Arc<Submission>, usize)> {
    while let Some((sub, idx)) = q.items.pop_front() {
        let mut p = plock(&sub.progress);
        if p.poisoned {
            p.finished += 1;
            let done = Submission::complete(&p, sub.n);
            drop(p);
            if done {
                sub.finished_cv.notify_all();
            }
            continue;
        }
        p.running += 1;
        drop(p);
        return Some((sub, idx));
    }
    None
}

/// Executes one claimed node: run the closure, then either release its
/// dependents into the queue or — on panic — poison the submission and
/// purge its queued nodes.
fn run_node(shared: &Shared, sub: &Arc<Submission>, idx: usize) {
    let run = plock(&sub.closures[idx])
        .take()
        .expect("node scheduled exactly once");
    match catch_unwind(AssertUnwindSafe(run)) {
        Ok(()) => {
            let mut newly = Vec::new();
            for &d in &sub.dependents[idx] {
                if sub.pending[d].fetch_sub(1, Ordering::AcqRel) == 1 {
                    newly.push(d);
                }
            }
            let pushed = !newly.is_empty();
            {
                let mut q = plock(&shared.queue);
                let mut p = plock(&sub.progress);
                if !p.poisoned {
                    for d in newly {
                        q.items.push_back((Arc::clone(sub), d));
                    }
                }
                p.running -= 1;
                p.finished += 1;
                if Submission::complete(&p, sub.n) {
                    sub.finished_cv.notify_all();
                }
            }
            if pushed {
                shared.available.notify_all();
            }
        }
        Err(payload) => {
            let mut q = plock(&shared.queue);
            let before = q.items.len();
            q.items.retain(|(s, _)| !Arc::ptr_eq(s, sub));
            let purged = before - q.items.len();
            let mut p = plock(&sub.progress);
            p.poisoned = true;
            p.payload.get_or_insert(payload);
            p.running -= 1;
            p.finished += purged + 1;
            drop(p);
            drop(q);
            sub.finished_cv.notify_all();
        }
    }
}

/// Worker thread body: tag the thread with its pool identity, then claim
/// and run nodes until shutdown.
///
/// The two [`chaos`] fault points fire at the top of each iteration,
/// before the worker claims a node and outside every lock:
/// [`chaos::WORKER_CLAIM`] may panic (killing the worker — the respawn
/// guard heals the pool, and no submission is affected because nothing
/// was claimed), [`chaos::QUEUE_STALL`] may sleep (a stalled worker —
/// other workers keep draining the queue).
fn worker_loop(shared: &Arc<Shared>) {
    CURRENT_POOL.with(|p| p.set(Arc::as_ptr(shared) as *const () as usize));
    loop {
        chaos::at(chaos::WORKER_CLAIM);
        chaos::at(chaos::QUEUE_STALL);
        let item = {
            let mut q = plock(&shared.queue);
            loop {
                if q.shutdown {
                    return;
                }
                if let Some(item) = claim_next(&mut q) {
                    break item;
                }
                q = shared
                    .available
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        run_node(shared, &item.0, item.1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;
    use std::time::Instant;

    /// Hook installation is process-global; serialize tests that use it.
    fn chaos_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Polls until the pool heals back to `n` live workers.
    fn wait_for_pool(pool: &Executor, n: usize) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool.alive_workers() != n {
            assert!(
                Instant::now() < deadline,
                "pool never healed to {n} workers"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn zero_workers_is_a_typed_error() {
        assert_eq!(Executor::new(0).unwrap_err(), GraphError::ZeroWorkers);
    }

    #[test]
    fn workers_are_named() {
        let pool = Executor::new(2).unwrap();
        let name = Mutex::new(String::new());
        let mut g = TaskGraph::new();
        g.task(|| {
            *name.lock().unwrap() = std::thread::current().name().unwrap_or("").to_string();
        });
        pool.run(g).unwrap();
        assert!(
            name.into_inner().unwrap().starts_with("hero-worker-"),
            "nodes must run on named pool threads"
        );
    }

    #[test]
    fn pool_survives_many_submissions() {
        let pool = Executor::new(3).unwrap();
        let count = AtomicUsize::new(0);
        for _ in 0..50 {
            let mut g = TaskGraph::new();
            let a = g.task(|| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            let b = g.task(|| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            g.depends_on(b, a);
            pool.run(g).unwrap();
        }
        assert_eq!(count.into_inner(), 100);
        assert_eq!(pool.submissions(), 50);
    }

    #[test]
    fn concurrent_submissions_share_the_workers() {
        // Two submissions from two caller threads: both complete, and
        // their nodes interleave on one 2-worker pool. A barrier inside
        // the first node of each submission proves nodes from *both*
        // submissions were in flight simultaneously — impossible if the
        // pool serialized whole submissions.
        let pool = Arc::new(Executor::new(2).unwrap());
        let rendezvous = Barrier::new(2);
        let done = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let pool = Arc::clone(&pool);
                let rendezvous = &rendezvous;
                let done = &done;
                scope.spawn(move || {
                    let mut g = TaskGraph::new();
                    let first = g.task(move || {
                        rendezvous.wait();
                    });
                    let second = g.task(move || {
                        done.fetch_add(1, Ordering::Relaxed);
                    });
                    g.depends_on(second, first);
                    pool.run(g).unwrap();
                });
            }
        });
        assert_eq!(done.into_inner(), 2);
    }

    #[test]
    fn panic_poisons_only_its_own_submission() {
        let pool = Arc::new(Executor::new(2).unwrap());
        let healthy_done = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let p1 = Arc::clone(&pool);
            scope.spawn(move || {
                let mut g = TaskGraph::new();
                g.task(|| panic!("stream A exploded"));
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    let _ = p1.run(g);
                }));
                let payload = caught.expect_err("panic must re-raise on the submitter");
                assert_eq!(
                    *payload.downcast_ref::<&str>().unwrap(),
                    "stream A exploded"
                );
            });
            let p2 = Arc::clone(&pool);
            let healthy_done = &healthy_done;
            scope.spawn(move || {
                let mut g = TaskGraph::new();
                for _ in 0..64 {
                    g.task(|| {
                        healthy_done.fetch_add(1, Ordering::Relaxed);
                    });
                }
                p2.run(g).unwrap();
            });
        });
        assert_eq!(healthy_done.into_inner(), 64, "stream B must be unaffected");

        // The pool stays usable after the poisoned submission.
        let after = AtomicUsize::new(0);
        let mut g = TaskGraph::new();
        g.task(|| {
            after.fetch_add(1, Ordering::Relaxed);
        });
        pool.run(g).unwrap();
        assert_eq!(after.into_inner(), 1);
    }

    #[test]
    fn poisoned_submission_cancels_unreached_nodes() {
        let pool = Executor::new(1).unwrap();
        let ran = AtomicUsize::new(0);
        let mut g = TaskGraph::new();
        let boom = g.task(|| panic!("first"));
        // Dependents of the panicking node must never run.
        for _ in 0..8 {
            let t = g.task(|| {
                ran.fetch_add(1, Ordering::Relaxed);
            });
            g.depends_on(t, boom);
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _ = pool.run(g);
        }));
        assert!(result.is_err());
        assert_eq!(ran.into_inner(), 0);
    }

    #[test]
    fn nested_submission_from_a_worker_completes() {
        // A node submits a sub-graph onto its own pool and waits: the
        // worker helps drain the queue, so even a 1-worker pool finishes.
        let pool = Arc::new(Executor::new(1).unwrap());
        let inner_ran = AtomicUsize::new(0);
        let mut g = TaskGraph::new();
        {
            let pool = Arc::clone(&pool);
            let inner_ran = &inner_ran;
            g.task(move || {
                let mut inner = TaskGraph::new();
                let a = inner.task(|| {
                    inner_ran.fetch_add(1, Ordering::Relaxed);
                });
                let b = inner.task(|| {
                    inner_ran.fetch_add(1, Ordering::Relaxed);
                });
                inner.depends_on(b, a);
                pool.run(inner).unwrap();
            });
        }
        pool.run(g).unwrap();
        assert_eq!(inner_ran.into_inner(), 2);
    }

    #[test]
    fn cycles_rejected_before_any_node_runs() {
        let pool = Executor::new(2).unwrap();
        let ran = AtomicUsize::new(0);
        let mut g = TaskGraph::new();
        let a = g.task(|| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        let b = g.task(|| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        g.depends_on(a, b);
        g.depends_on(b, a);
        assert_eq!(pool.run(g).unwrap_err(), GraphError::CycleDetected);
        assert_eq!(ran.into_inner(), 0);
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let pool = Executor::new(2).unwrap();
        pool.run(TaskGraph::new()).unwrap();
        assert_eq!(pool.submissions(), 0);
    }

    #[test]
    fn drop_joins_workers() {
        // No hang on drop, repeatedly, including right after work.
        for _ in 0..4 {
            let pool = Executor::new(4).unwrap();
            let mut g = TaskGraph::new();
            for _ in 0..16 {
                g.task(|| {});
            }
            pool.run(g).unwrap();
            drop(pool);
        }
    }

    #[test]
    fn full_pool_starts_alive() {
        let pool = Executor::new(3).unwrap();
        assert_eq!(pool.alive_workers(), 3);
        assert_eq!(pool.respawned_workers(), 0);
    }

    #[test]
    fn killed_workers_respawn_and_work_completes() {
        let _g = chaos_lock();
        let pool = Executor::new(4).unwrap();
        // Kill exactly 2 workers: each hook hit decrements the budget
        // and panics while it stays non-negative. Bounded so respawned
        // replacements do not die in a loop.
        let deaths = Arc::new(AtomicUsize::new(2));
        let budget = Arc::clone(&deaths);
        crate::chaos::install(Arc::new(move |point| {
            if point == crate::chaos::WORKER_CLAIM
                && budget
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                    .is_ok()
            {
                panic!("injected worker death");
            }
        }));
        let count = AtomicUsize::new(0);
        let mut g = TaskGraph::new();
        for _ in 0..256 {
            g.task(|| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.run(g).unwrap();
        crate::chaos::clear();
        assert_eq!(count.into_inner(), 256, "submission must survive deaths");
        assert_eq!(deaths.load(Ordering::SeqCst), 0, "both deaths must fire");
        wait_for_pool(&pool, 4);
        assert_eq!(pool.respawned_workers(), 2);
        // The healed pool still runs work.
        let after = AtomicUsize::new(0);
        let mut g = TaskGraph::new();
        for _ in 0..16 {
            g.task(|| {
                after.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.run(g).unwrap();
        assert_eq!(after.into_inner(), 16);
    }

    #[test]
    fn stall_point_delays_without_killing() {
        let _g = chaos_lock();
        let pool = Executor::new(2).unwrap();
        let stalls = Arc::new(AtomicUsize::new(2));
        let budget = Arc::clone(&stalls);
        crate::chaos::install(Arc::new(move |point| {
            if point == crate::chaos::QUEUE_STALL
                && budget
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                    .is_ok()
            {
                std::thread::sleep(Duration::from_millis(20));
            }
        }));
        let count = AtomicUsize::new(0);
        let mut g = TaskGraph::new();
        for _ in 0..32 {
            g.task(|| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.run(g).unwrap();
        crate::chaos::clear();
        assert_eq!(count.into_inner(), 32);
        assert_eq!(pool.alive_workers(), 2, "stalls must not kill workers");
        assert_eq!(pool.respawned_workers(), 0);
    }

    #[test]
    fn drop_with_concurrent_deaths_does_not_hang() {
        let _g = chaos_lock();
        // Workers die on (nearly) every claim attempt while the pool is
        // dropped: the shutdown check in the respawn guard and the
        // handle-drain loop in Drop must converge, never deadlock.
        for _ in 0..8 {
            let pool = Executor::new(4).unwrap();
            let budget = Arc::new(AtomicUsize::new(3));
            let b = Arc::clone(&budget);
            crate::chaos::install(Arc::new(move |point| {
                if point == crate::chaos::WORKER_CLAIM
                    && b.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                        .is_ok()
                {
                    panic!("injected worker death");
                }
            }));
            // Poke the pool so workers wake and some die mid-drop.
            let mut g = TaskGraph::new();
            for _ in 0..8 {
                g.task(|| {});
            }
            pool.run(g).unwrap();
            drop(pool);
            crate::chaos::clear();
        }
    }
}
