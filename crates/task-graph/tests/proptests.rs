//! Property-based tests over the task-graph executor: dependency
//! correctness, cycle detection, and makespan bounds on random DAGs.

use hero_gpu_sim::device::rtx_4090;
use hero_gpu_sim::stream::Timeline;
use hero_task_graph::{GraphBuilder, GraphError};
use proptest::prelude::*;

/// A random layered DAG: `widths[i]` nodes in layer i, each depending on
/// a random subset of the previous layer (index-encoded by `edge_bits`).
fn build_layered(
    widths: &[usize],
    durations: &[f64],
    edge_bits: u64,
) -> (GraphBuilder, Vec<Vec<usize>>, Vec<f64>) {
    let mut g = GraphBuilder::new();
    let mut layers: Vec<Vec<_>> = Vec::new();
    let mut layer_starts: Vec<usize> = Vec::new();
    let mut deps_of: Vec<Vec<usize>> = Vec::new();
    let mut durs: Vec<f64> = Vec::new();
    let mut flat = 0usize;
    let mut bit = 0u32;
    for (li, &w) in widths.iter().enumerate() {
        layer_starts.push(flat);
        let mut layer = Vec::new();
        for _ in 0..w {
            let dur = durations[flat % durations.len()].max(1.0);
            let node = g.kernel(format!("n{flat}"), dur, 8);
            durs.push(dur);
            let mut deps = Vec::new();
            if li > 0 {
                let prev_start = layer_starts[li - 1];
                for (pi, &prev) in layers[li - 1].iter().enumerate() {
                    let take = (edge_bits >> (bit % 64)) & 1 == 1;
                    bit += 1;
                    // Always connect to at least the first parent so layers
                    // stay ordered.
                    if take || pi == 0 {
                        g.depends_on(node, prev);
                        deps.push(prev_start + pi);
                    }
                }
            }
            deps_of.push(deps);
            layer.push(node);
            flat += 1;
        }
        layers.push(layer);
    }
    (g, deps_of, durs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_dags_respect_dependencies(
        widths in proptest::collection::vec(1usize..4, 1..5),
        durations in proptest::collection::vec(1.0f64..50.0, 1..8),
        edge_bits in any::<u64>()
    ) {
        let (g, deps_of, _) = build_layered(&widths, &durations, edge_bits);
        let exe = g.instantiate(&rtx_4090());
        let mut tl = Timeline::new(rtx_4090());
        exe.launch(&mut tl, 0);

        // Executed order: map node name back to flat index.
        let mut span_of = vec![(0.0f64, 0.0f64); deps_of.len()];
        for k in tl.executed() {
            let idx: usize = k.name[1..].parse().expect("n<idx>");
            span_of[idx] = (k.start_us, k.end_us);
        }
        for (node, deps) in deps_of.iter().enumerate() {
            for &d in deps {
                prop_assert!(
                    span_of[node].0 >= span_of[d].1 - 1e-9,
                    "node {node} started {} before dep {d} ended {}",
                    span_of[node].0,
                    span_of[d].1
                );
            }
        }
    }

    #[test]
    fn makespan_at_least_critical_path(
        widths in proptest::collection::vec(1usize..4, 1..5),
        durations in proptest::collection::vec(1.0f64..50.0, 1..8),
        edge_bits in any::<u64>()
    ) {
        let (g, deps_of, durs) = build_layered(&widths, &durations, edge_bits);
        let exe = g.instantiate(&rtx_4090());
        let mut tl = Timeline::new(rtx_4090());
        let end = exe.launch(&mut tl, 0);

        // Longest path through the DAG is a lower bound on the makespan.
        let mut longest = vec![0.0f64; deps_of.len()];
        for node in 0..deps_of.len() {
            let base = deps_of[node].iter().map(|&d| longest[d]).fold(0.0f64, f64::max);
            longest[node] = base + durs[node];
        }
        let critical = longest.iter().fold(0.0f64, |a, &b| a.max(b));
        prop_assert!(end + 1e-6 >= critical, "end {end} < critical {critical}");
    }

    #[test]
    fn any_back_edge_makes_a_cycle(
        n in 2usize..8,
        from in 0usize..8,
        to in 0usize..8
    ) {
        let from = from % n;
        let to = to % n;
        prop_assume!(from < to); // back edge target earlier in chain
        let mut g = GraphBuilder::new();
        let nodes: Vec<_> = (0..n).map(|i| g.kernel(format!("k{i}"), 1.0, 1)).collect();
        for w in nodes.windows(2) {
            g.depends_on(w[1], w[0]);
        }
        // Forward chain + one backward edge = cycle.
        g.depends_on(nodes[from], nodes[to]);
        prop_assert_eq!(
            g.try_instantiate(&rtx_4090()).unwrap_err(),
            GraphError::CycleDetected
        );
    }

    #[test]
    fn repeated_launches_are_deterministic_per_stream_group(
        widths in proptest::collection::vec(1usize..3, 1..4),
        durations in proptest::collection::vec(1.0f64..20.0, 1..4)
    ) {
        let (g, _, _) = build_layered(&widths, &durations, u64::MAX);
        let exe = g.instantiate(&rtx_4090());
        let mut tl1 = Timeline::new(rtx_4090());
        let mut tl2 = Timeline::new(rtx_4090());
        let a1 = exe.launch(&mut tl1, 0);
        let a2 = exe.launch(&mut tl2, 0);
        prop_assert!((a1 - a2).abs() < 1e-9, "identical launches must agree");
        let b1 = exe.launch(&mut tl1, 0);
        prop_assert!(b1 >= a1, "same-group relaunch serializes");
    }
}
