//! Server-level concurrency and robustness tests: parallel multi-tenant
//! correctness against the sequential oracle, hostile framing, typed
//! overload, and graceful shutdown under load.
//!
//! Engines run a reduced SPHINCS+ shape (the same one the service-layer
//! tests use) so each test finishes in seconds while still exercising
//! the full listener → keystore → SignService → Executor path.

use hero_server::client::{Client, ClientError};
use hero_server::keystore::KeyStore;
use hero_server::server::{hero_engine_factory, Server, ServerConfig};
use hero_server::wire::{self, Frame, Op, Request};
use hero_server::ErrorCode;

use hero_sign::service::ServiceConfig;
use hero_sphincs::hash::HashAlg;
use hero_sphincs::params::Params;
use hero_sphincs::sign::{SigningKey, VerifyingKey};

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn tiny_params() -> Params {
    let mut p = Params::sphincs_128f();
    p.h = 6;
    p.d = 3;
    p.log_t = 4;
    p.k = 8;
    p
}

fn tenant_key(seed: u8) -> (SigningKey, VerifyingKey) {
    let p = tiny_params();
    hero_sphincs::keygen_from_seeds_with_alg(
        p,
        HashAlg::Sha256,
        vec![seed; p.n],
        vec![seed.wrapping_add(1); p.n],
        vec![seed.wrapping_add(2); p.n],
    )
}

/// A server over `tenants` reduced-shape keys, returning the key
/// material so tests can oracle-check signatures locally.
fn test_server(
    tenants: &[&str],
    config: ServerConfig,
) -> (Server, Vec<(String, SigningKey, VerifyingKey)>) {
    let keystore = KeyStore::new();
    let mut keys = Vec::new();
    for (i, tenant) in tenants.iter().enumerate() {
        let (sk, vk) = tenant_key(10 + i as u8 * 3);
        keystore.insert(tenant, sk.clone(), vk.clone()).unwrap();
        keys.push((tenant.to_string(), sk, vk));
    }
    // `None` = the shared `HERO_WORKERS`-aware executor, so CI can pin
    // the whole suite to one worker and still exercise every invariant.
    let factory = hero_engine_factory(None).unwrap();
    let server = Server::start(factory, keystore, config).unwrap();
    (server, keys)
}

#[test]
fn parallel_tenants_byte_identical_to_sequential_oracle() {
    let (server, keys) = test_server(
        &["tenant-a", "tenant-b", "tenant-c", "tenant-d"],
        ServerConfig::default(),
    );
    let addr = server.local_addr();

    // Two connections per tenant, several requests each, all in flight
    // at once across tenants.
    let results: Vec<(String, Vec<u8>, Vec<u8>)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (tenant, _, _) in &keys {
            for conn in 0..2u8 {
                let tenant = tenant.clone();
                handles.push(scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let mut out = Vec::new();
                    for i in 0..4u8 {
                        let msg = format!("{tenant} conn {conn} msg {i}").into_bytes();
                        let sig = client.sign(&tenant, &msg).unwrap();
                        out.push((tenant.clone(), msg, sig));
                    }
                    out
                }));
            }
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    assert_eq!(results.len(), keys.len() * 2 * 4);
    for (tenant, msg, sig_bytes) in &results {
        let (_, sk, vk) = keys.iter().find(|(t, _, _)| t == tenant).unwrap();
        // SPHINCS+ signing is deterministic, so the network path must be
        // byte-identical to signing sequentially with the key itself.
        let oracle = sk.sign(msg).to_bytes(sk.params());
        assert_eq!(&oracle, sig_bytes, "{tenant}: {msg:?}");
        let sig = hero_sphincs::Signature::from_bytes(vk.params(), sig_bytes).unwrap();
        vk.verify(msg, &sig).unwrap();
    }

    // Batch signing matches per-message signing.
    let (tenant, sk, _) = &keys[0];
    let mut client = Client::connect(addr).unwrap();
    let msgs: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 10]).collect();
    let msg_refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
    let sigs = client.sign_batch(tenant, &msg_refs).unwrap();
    for (msg, sig) in msgs.iter().zip(&sigs) {
        assert_eq!(&sk.sign(msg).to_bytes(sk.params()), sig);
    }
    server.shutdown();
}

#[test]
fn verify_batch_reports_per_item_verdicts_and_metrics() {
    let (server, keys) = test_server(&["tenant-a"], ServerConfig::default());
    let addr = server.local_addr();
    let (tenant, sk, _) = &keys[0];
    let mut client = Client::connect(addr).unwrap();

    // Sign locally (deterministic oracle), then verify over the wire:
    // one valid, one bit-flipped (invalid), one truncated (malformed),
    // one valid again.
    let msgs: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 12]).collect();
    let mut sigs: Vec<Vec<u8>> = msgs
        .iter()
        .map(|m| sk.sign(m).to_bytes(sk.params()))
        .collect();
    sigs[1][0] ^= 1;
    sigs[2].truncate(10);

    let items: Vec<(&[u8], &[u8])> = msgs
        .iter()
        .zip(&sigs)
        .map(|(m, s)| (m.as_slice(), s.as_slice()))
        .collect();
    let verdicts = client.verify_batch(tenant, &items).unwrap();
    use hero_server::VerifyVerdict;
    assert_eq!(
        verdicts,
        vec![
            VerifyVerdict::Valid,
            VerifyVerdict::Invalid,
            VerifyVerdict::Malformed,
            VerifyVerdict::Valid,
        ]
    );

    // The single-verify op agrees, including under a generous deadline.
    assert!(client.verify(tenant, &msgs[0], &sigs[0]).unwrap());
    assert!(!client.verify(tenant, &msgs[1], &sigs[1]).unwrap());
    assert!(client
        .verify_with_deadline(tenant, &msgs[3], &sigs[3], 10_000)
        .unwrap());

    // A verify-batch count the payload cannot hold is rejected typed.
    let req = Request {
        id: 61,
        tenant: tenant.clone(),
        op: Op::VerifyBatch,
        deadline_ms: None,
        payload: u32::MAX.to_be_bytes().to_vec(),
    };
    let mut stream = TcpStream::connect(addr).unwrap();
    wire::write_frame(&mut stream, &wire::encode_request(&req)).unwrap();
    let resp = read_response(&mut stream);
    assert_eq!(resp.result.unwrap_err().code, ErrorCode::Malformed);

    // Per-tenant verify counters and the verify latency window are live.
    let page = client.stats().unwrap();
    assert!(
        page.contains("hero_verify_requests_total{tenant=\"tenant-a\"} 7"),
        "{page}"
    );
    assert!(
        page.contains("hero_verify_invalid_total{tenant=\"tenant-a\"} 2"),
        "{page}"
    );
    assert!(
        page.contains("hero_verify_malformed_total{tenant=\"tenant-a\"} 1"),
        "{page}"
    );
    assert!(!page.contains("hero_verify_latency_samples 0"), "{page}");
    server.shutdown();
}

#[test]
fn hostile_frames_answered_typed_without_killing_the_connection() {
    let (server, keys) = test_server(
        &["tenant-a"],
        ServerConfig {
            max_frame: 4096,
            ..ServerConfig::default()
        },
    );
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();

    // Raw frame writer: length prefix + body ([`wire::write_frame`]
    // expects frames already encoded by `encode_request`).
    fn send_body(stream: &mut TcpStream, body: &[u8]) {
        stream
            .write_all(&(body.len() as u32).to_be_bytes())
            .unwrap();
        stream.write_all(body).unwrap();
    }

    // 1. Wrong protocol version; the id must still be echoed back.
    let mut body = vec![99u8];
    body.extend_from_slice(&7u64.to_be_bytes());
    body.extend_from_slice(&[1, 0, 0]);
    send_body(&mut stream, &body);
    let resp = read_response(&mut stream);
    assert_eq!(resp.id, 7);
    assert_eq!(resp.result.unwrap_err().code, ErrorCode::UnsupportedVersion);

    // 2. Unknown opcode.
    let mut body = vec![wire::WIRE_VERSION];
    body.extend_from_slice(&8u64.to_be_bytes());
    body.extend_from_slice(&[42, 0, 0]);
    send_body(&mut stream, &body);
    let resp = read_response(&mut stream);
    assert_eq!(resp.id, 8);
    assert_eq!(resp.result.unwrap_err().code, ErrorCode::UnknownOpcode);

    // 3. Truncated body: too short to even carry a request header.
    send_body(&mut stream, &[1, 2, 3]);
    let resp = read_response(&mut stream);
    assert_eq!(resp.result.unwrap_err().code, ErrorCode::Malformed);

    // 4. Oversized frame: declared 8 KiB against a 4 KiB cap. The server
    //    must discard the body in sync, answer typed, and still echo the
    //    request id from the discarded body's header.
    let mut big = vec![wire::WIRE_VERSION];
    big.extend_from_slice(&55u64.to_be_bytes());
    big.resize(8192, 0xab);
    stream.write_all(&(big.len() as u32).to_be_bytes()).unwrap();
    stream.write_all(&big).unwrap();
    let resp = read_response(&mut stream);
    assert_eq!(resp.id, 55);
    assert_eq!(resp.result.unwrap_err().code, ErrorCode::OversizedFrame);

    // 5. A sign-batch whose declared count could never fit the payload
    //    must be rejected before the count sizes any allocation.
    let req = Request {
        id: 60,
        tenant: "tenant-a".to_string(),
        op: Op::SignBatch,
        deadline_ms: None,
        payload: u32::MAX.to_be_bytes().to_vec(),
    };
    wire::write_frame(&mut stream, &wire::encode_request(&req)).unwrap();
    let resp = read_response(&mut stream);
    assert_eq!(resp.id, 60);
    assert_eq!(resp.result.unwrap_err().code, ErrorCode::Malformed);

    // 6. The same connection still serves a valid request afterwards.
    let msg = b"still alive".to_vec();
    let req = Request {
        id: 99,
        tenant: "tenant-a".to_string(),
        op: Op::Sign,
        deadline_ms: None,
        payload: msg.clone(),
    };
    wire::write_frame(&mut stream, &wire::encode_request(&req)).unwrap();
    let resp = read_response(&mut stream);
    assert_eq!(resp.id, 99);
    let sig = resp.result.unwrap();
    let (_, sk, _) = &keys[0];
    assert_eq!(sig, sk.sign(&msg).to_bytes(sk.params()));

    // 7. A connection dying mid-frame must not take the server with it.
    let mut dying = TcpStream::connect(server.local_addr()).unwrap();
    dying.write_all(&100u32.to_be_bytes()).unwrap();
    dying.write_all(&[1, 2, 3]).unwrap(); // 3 of 100 promised bytes
    drop(dying);
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert!(client.stats().unwrap().contains("hero_server_up 1"));

    server.shutdown();
}

fn read_response(stream: &mut TcpStream) -> hero_server::Response {
    match wire::read_frame(stream, wire::DEFAULT_MAX_FRAME).unwrap() {
        Frame::Body(body) => wire::decode_response(&body).unwrap(),
        other => panic!("expected a response frame, got {other:?}"),
    }
}

#[test]
fn overload_rejected_typed_and_every_request_answered() {
    // A queue of depth 1 and an admission cap of 2 under 8 concurrent
    // connections: most requests must be turned away — as *typed*
    // backpressure errors, never stalls or dropped connections.
    let (server, keys) = test_server(
        &["tenant-a"],
        ServerConfig {
            service: ServiceConfig {
                queue_depth: 1,
                ..ServiceConfig::default()
            },
            per_tenant_inflight: 2,
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();

    let outcomes: Vec<Result<Vec<u8>, ClientError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let mut outs = Vec::new();
                    for i in 0..4u8 {
                        outs.push(client.sign("tenant-a", &[t as u8, i]));
                    }
                    outs
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    assert_eq!(outcomes.len(), 32, "every request got exactly one answer");
    let mut ok = 0;
    let mut backpressure = 0;
    for outcome in &outcomes {
        match outcome {
            Ok(sig) => {
                ok += 1;
                let (_, sk, _) = &keys[0];
                // Deterministic signing: even under overload, accepted
                // requests produce correct signatures.
                assert_eq!(sig.len(), sk.params().sig_bytes());
            }
            Err(ClientError::Wire(e)) => {
                assert!(
                    e.code.is_backpressure(),
                    "only typed backpressure expected, got {e}"
                );
                backpressure += 1;
            }
            Err(other) => panic!("unexpected failure: {other}"),
        }
    }
    assert!(ok >= 1, "some requests must get through");
    assert!(
        backpressure >= 1,
        "a depth-1 queue under 8 connections must shed load ({ok} ok)"
    );

    let page = Client::connect(addr).unwrap().stats().unwrap();
    assert!(
        page.contains("hero_server_tenant_rejected_total{tenant=\"tenant-a\"}"),
        "{page}"
    );
    server.shutdown();
}

#[test]
fn shutdown_under_load_never_drops_or_double_answers() {
    let (server, keys) = test_server(&["tenant-a", "tenant-b"], ServerConfig::default());
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));

    // Closed-loop clients hammer the server; main thread shuts it down
    // mid-flight. A dropped request would hang its client forever (the
    // test would time out); a double answer would desynchronize the
    // stream and surface as ClientError::Protocol on the next read.
    let (done_answers, protocol_errors) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let stop = Arc::clone(&stop);
                let tenant = if t % 2 == 0 { "tenant-a" } else { "tenant-b" };
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let mut answers = 0u32;
                    let mut protocol = 0u32;
                    for i in 0..10_000u32 {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        match client.sign(tenant, &i.to_be_bytes()) {
                            Ok(_) | Err(ClientError::Wire(_)) => answers += 1,
                            // EOF/reset: drain cut the connection before
                            // this request was accepted.
                            Err(ClientError::Io(_)) => break,
                            Err(ClientError::Protocol(_)) => {
                                protocol += 1;
                                break;
                            }
                        }
                    }
                    (answers, protocol)
                })
            })
            .collect();

        // Let the clients get some requests through, then drain.
        std::thread::sleep(std::time::Duration::from_millis(300));
        server.shutdown();
        stop.store(true, Ordering::Relaxed);

        let mut answers = 0;
        let mut protocol = 0;
        for h in handles {
            let (a, p) = h.join().unwrap();
            answers += a;
            protocol += p;
        }
        (answers, protocol)
    });

    assert!(done_answers > 0, "clients must make progress before drain");
    assert_eq!(
        protocol_errors, 0,
        "a double-answered request would desync some client's stream"
    );

    // After drain the listener is closed: connect fails outright or the
    // connection is dropped without serving.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut client) => assert!(client.sign("tenant-a", b"late").is_err()),
    }
    let _ = keys;
}

#[test]
fn keygen_registers_a_servable_tenant() {
    let (server, _) = test_server(&["tenant-a"], ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Remote keygen on a full-size shape label (keygen only computes the
    // top subtree; signing stays on existing reduced-shape tenants).
    let reply = client
        .keygen("fresh-tenant", "128f", None, Some(42))
        .unwrap();
    assert_eq!(reply.params, "SPHINCS+-128f");
    assert_eq!(reply.alg, "sha256");
    assert_eq!(reply.public_key.len(), 32);

    // Deterministic: the same seed on the same label collides as an
    // existing tenant, and a different name reproduces the public key.
    let err = client
        .keygen("fresh-tenant", "128f", None, Some(42))
        .unwrap_err();
    match err {
        ClientError::Wire(e) => assert_eq!(e.code, ErrorCode::TenantExists),
        other => panic!("expected TenantExists, got {other}"),
    }
    let twin = client
        .keygen("twin-tenant", "128f", None, Some(42))
        .unwrap();
    assert_eq!(twin.public_key, reply.public_key);

    // Bad labels and hostile tenant names are BadRequest, not hangs.
    for (tenant, params) in [("x", "999f"), ("../escape", "128f"), ("", "128f")] {
        let err = client.keygen(tenant, params, None, Some(1)).unwrap_err();
        match err {
            ClientError::Wire(e) => assert_eq!(e.code, ErrorCode::BadRequest, "{tenant}/{params}"),
            other => panic!("expected BadRequest, got {other}"),
        }
    }
    server.shutdown();
}

#[test]
fn concurrent_persistent_keygen_has_one_winner_and_disk_matches_memory() {
    let dir = std::env::temp_dir().join(format!("hero-server-keys-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (server, _) = test_server(
        &[],
        ServerConfig {
            keys_dir: Some(dir.clone()),
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();

    // Distinct seeds: the racing keygens would produce *different* keys,
    // so exactly one may win, the rest must lose typed, and the key on
    // disk must be the winner's (the one being served from memory).
    let outcomes: Vec<Result<hero_server::KeygenReply, ClientError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4u64)
                .map(|i| {
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).unwrap();
                        client.keygen("contended", "128f", None, Some(100 + i))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

    let winners: Vec<_> = outcomes.iter().filter_map(|o| o.as_ref().ok()).collect();
    assert_eq!(winners.len(), 1, "exactly one concurrent keygen may win");
    for outcome in &outcomes {
        if let Err(e) = outcome {
            match e {
                ClientError::Wire(e) => assert_eq!(e.code, ErrorCode::TenantExists),
                other => panic!("losers must lose typed, got {other}"),
            }
        }
    }
    let text = std::fs::read_to_string(dir.join("contended.key")).unwrap();
    let (_, vk) = hero_server::keyfile::decode(&text).unwrap();
    assert_eq!(
        vk.to_bytes(),
        winners[0].public_key,
        "the persisted key must be the served key"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
