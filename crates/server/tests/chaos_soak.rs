//! The chaos soak: the whole stack — listener, wire v2 deadlines,
//! per-tenant services, shared executor — under a seeded fault schedule
//! covering worker deaths, queue stalls, slow plan stages, connection
//! drops, and partial/slow response writes. Traffic is mixed sign +
//! verify, so both planners (the sign stage graph, which also exercises
//! `hypertree.cache`, and the verify stage graph under `plan.stage`)
//! run inside the chaos window.
//!
//! Invariants checked per seed:
//!
//! 1. **Exactly once** — every request a client managed to get answered
//!    carries either an oracle-identical signature or a typed error
//!    from the allowed set (deadline, queue-full, tenant-busy); id
//!    mismatches or undecodable frames (the signature of a dropped or
//!    double answer) fail the test. Server-side, each tenant's request
//!    counter equals completed + rejected at quiescence.
//! 2. **Self-healing** — every injected worker death is matched by a
//!    respawn and the pool is back at full strength afterwards.
//! 3. **Recovery** — once the schedule is cleared, a clean burst of
//!    requests all succeed with oracle-identical bytes.
//!
//! `HERO_WORKERS` sizes the pool (CI runs 1 and 8); the three seeds are
//! pinned so failures reproduce exactly.

use hero_gpu_sim::device::rtx_4090;
use hero_server::client::{Client, ClientError};
use hero_server::keystore::KeyStore;
use hero_server::server::{Server, ServerConfig, SignerFactory};
use hero_server::ErrorCode;

use hero_sign::faults::{self, FaultAction, FaultPlan, FaultSpec};
use hero_sign::service::ServiceConfig;
use hero_sign::{HeroSigner, Signer};
use hero_sphincs::hash::HashAlg;
use hero_sphincs::params::Params;
use hero_sphincs::sign::{SigningKey, VerifyingKey};
use hero_task_graph::Executor;

use std::sync::Arc;
use std::time::{Duration, Instant};

const SEEDS: [u64; 3] = [42, 0x5EED_0001, 0xA5A5_A5A5];
const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 30;
const RECOVERY_BURST: usize = 20;

fn tiny_params() -> Params {
    let mut p = Params::sphincs_128f();
    p.h = 6;
    p.d = 3;
    p.log_t = 4;
    p.k = 8;
    p
}

fn tenant_key(seed: u8) -> (SigningKey, VerifyingKey) {
    let p = tiny_params();
    hero_sphincs::keygen_from_seeds_with_alg(
        p,
        HashAlg::Sha256,
        vec![seed; p.n],
        vec![seed.wrapping_add(1); p.n],
        vec![seed.wrapping_add(2); p.n],
    )
}

fn pool_size() -> usize {
    std::env::var("HERO_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&w| w >= 1)
        .unwrap_or(4)
}

/// Like `hero_engine_factory`, but keeps a handle to the executor so
/// the test can watch the pool heal.
fn introspectable_factory(runtime: &Arc<Executor>) -> Arc<SignerFactory> {
    let rt = Arc::clone(runtime);
    Arc::new(move |params: Params| {
        let engine = HeroSigner::builder(rtx_4090(), params)
            .runtime(Arc::clone(&rt))
            .build()?;
        Ok(Arc::new(engine) as Arc<dyn Signer + Send + Sync>)
    })
}

fn spec(point: &str, probability: f64, max_fires: Option<u64>, action: FaultAction) -> FaultSpec {
    FaultSpec {
        point: point.to_string(),
        probability,
        max_fires,
        action,
    }
}

/// Pulls one `name{tenant="…"} value` metric out of the plaintext page.
fn tenant_metric(page: &str, name: &str, tenant: &str) -> u64 {
    let needle = format!("{name}{{tenant=\"{tenant}\"}} ");
    page.lines()
        .find_map(|l| l.strip_prefix(&needle))
        .unwrap_or_else(|| panic!("metric {needle} missing from page:\n{page}"))
        .trim()
        .parse()
        .expect("metric value")
}

struct Tally {
    ok: usize,
    typed: usize,
    transport: usize,
}

#[test]
fn soak_under_three_pinned_seeds() {
    for seed in SEEDS {
        run_soak(seed);
    }
}

fn run_soak(seed: u64) {
    let workers = pool_size();
    let runtime = Arc::new(Executor::new(workers).unwrap());
    let factory = introspectable_factory(&runtime);

    let keystore = KeyStore::new();
    let mut keys = Vec::new();
    for (i, tenant) in ["soak-a", "soak-b"].iter().enumerate() {
        let (sk, vk) = tenant_key(20 + i as u8 * 3);
        keystore.insert(tenant, sk.clone(), vk.clone()).unwrap();
        keys.push((tenant.to_string(), sk, vk));
    }
    let config = ServerConfig {
        service: ServiceConfig {
            queue_depth: 64,
            ..ServiceConfig::default()
        },
        per_tenant_inflight: 32,
        ..ServerConfig::default()
    };
    let server = Server::start(factory, keystore, config).unwrap();
    let addr = server.local_addr();

    // Warm both tenants before arming faults: engine construction and
    // the tuning search happen once, outside the chaos window.
    for (tenant, sk, _) in &keys {
        let mut c = Client::connect(addr).unwrap();
        let sig = c.sign(tenant, b"warm-up").unwrap();
        assert_eq!(sig, sk.sign(b"warm-up").to_bytes(sk.params()));
    }

    faults::install(FaultPlan {
        seed,
        specs: vec![
            // Kill up to a pool's worth of workers over the run.
            spec(
                faults::EXECUTOR_WORKER_CLAIM,
                0.01,
                Some(workers as u64),
                FaultAction::Fail,
            ),
            // Stalled workers and slow hash stages: latency, not loss.
            spec(
                faults::EXECUTOR_QUEUE_STALL,
                0.05,
                None,
                FaultAction::Delay(Duration::from_millis(1)),
            ),
            spec(
                faults::PLAN_STAGE,
                0.01,
                None,
                FaultAction::Delay(Duration::from_millis(1)),
            ),
            // Hypertree-cache chaos: dropped fills and forced evictions
            // must degrade to cold-cost signing, never wrong bytes.
            spec(faults::HYPERTREE_CACHE, 0.05, None, FaultAction::Fail),
            // Transport chaos at the TCP edge.
            spec(
                hero_server::faults::SERVER_CONN_DROP,
                0.03,
                None,
                FaultAction::Fail,
            ),
            spec(
                hero_server::faults::SERVER_WRITE_PARTIAL,
                0.03,
                None,
                FaultAction::Fail,
            ),
            spec(
                hero_server::faults::SERVER_WRITE_SLOW,
                0.05,
                None,
                FaultAction::Delay(Duration::from_millis(2)),
            ),
        ],
    });

    // The soak: every answered request must be a valid signature or a
    // typed error from the allowed set; transport failures reconnect.
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..CLIENTS {
            let (tenant, sk, _) = &keys[c % keys.len()];
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut tally = Tally {
                    ok: 0,
                    typed: 0,
                    transport: 0,
                };
                for i in 0..REQUESTS_PER_CLIENT {
                    let msg = format!("soak seed {seed} client {c} msg {i}").into_bytes();
                    // Every fourth request runs on a 1 ms budget (may
                    // legitimately expire); the rest get 10 s.
                    let deadline_ms = if i % 4 == 0 { 1 } else { 10_000 };
                    // Every third request is a verify instead of a sign,
                    // so the verify planner's stage graph runs under the
                    // same armed plan.stage/cache/transport chaos as the
                    // sign planner — half with a deliberately corrupted
                    // signature that must come back *invalid*, not ok.
                    if i % 3 == 2 {
                        let mut sig_bytes = sk.sign(&msg).to_bytes(sk.params());
                        let tampered = i % 6 == 5;
                        if tampered {
                            sig_bytes[0] ^= 1;
                        }
                        match client.verify_with_deadline(tenant, &msg, &sig_bytes, deadline_ms) {
                            Ok(valid) => {
                                assert_eq!(
                                    valid, !tampered,
                                    "seed {seed}: verify verdict diverged from oracle"
                                );
                                tally.ok += 1;
                            }
                            Err(ClientError::Wire(e)) => {
                                assert!(
                                    matches!(
                                        e.code,
                                        ErrorCode::DeadlineExceeded
                                            | ErrorCode::QueueFull
                                            | ErrorCode::TenantBusy
                                    ),
                                    "seed {seed}: unexpected typed error {e}"
                                );
                                tally.typed += 1;
                            }
                            Err(ClientError::Io(_)) => {
                                tally.transport += 1;
                                client = Client::connect(addr).unwrap();
                            }
                            Err(ClientError::Protocol(p)) => {
                                panic!(
                                    "seed {seed}: protocol violation (dropped/double answer): {p}"
                                )
                            }
                        }
                        continue;
                    }
                    match client.sign_with_deadline(tenant, &msg, deadline_ms) {
                        Ok(sig) => {
                            assert_eq!(
                                sig,
                                sk.sign(&msg).to_bytes(sk.params()),
                                "seed {seed}: signature diverged from oracle"
                            );
                            tally.ok += 1;
                        }
                        Err(ClientError::Wire(e)) => {
                            assert!(
                                matches!(
                                    e.code,
                                    ErrorCode::DeadlineExceeded
                                        | ErrorCode::QueueFull
                                        | ErrorCode::TenantBusy
                                ),
                                "seed {seed}: unexpected typed error {e}"
                            );
                            tally.typed += 1;
                        }
                        Err(ClientError::Io(_)) => {
                            // Injected connection drop or partial write:
                            // the request's fate is unknown to the
                            // client; reconnect and move on. (Signing is
                            // deterministic, so replaying would also be
                            // legal — the accounting here just counts.)
                            tally.transport += 1;
                            client = Client::connect(addr).unwrap();
                        }
                        Err(ClientError::Protocol(p)) => {
                            panic!("seed {seed}: protocol violation (dropped/double answer): {p}")
                        }
                    }
                }
                tally
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let deaths = faults::fired(faults::EXECUTOR_WORKER_CLAIM);
    faults::clear();

    let total: usize = tallies.iter().map(|t| t.ok + t.typed + t.transport).sum();
    assert_eq!(
        total,
        CLIENTS * REQUESTS_PER_CLIENT,
        "seed {seed}: every request accounted for exactly once"
    );
    let ok: usize = tallies.iter().map(|t| t.ok).sum();
    assert!(ok > 0, "seed {seed}: the soak should sign successfully too");

    // Self-healing: every injected death respawned; pool back to full.
    let heal_deadline = Instant::now() + Duration::from_secs(10);
    while runtime.alive_workers() != workers {
        assert!(
            Instant::now() < heal_deadline,
            "seed {seed}: pool stuck at {} of {workers} workers",
            runtime.alive_workers()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        runtime.respawned_workers(),
        deaths,
        "seed {seed}: every death must be matched by a respawn"
    );

    // Recovery: with the schedule cleared, a clean burst all succeeds.
    let (tenant, sk, _) = &keys[0];
    let mut client = Client::connect(addr).unwrap();
    for i in 0..RECOVERY_BURST {
        let msg = format!("recovery {seed} {i}").into_bytes();
        let sig = client
            .sign(tenant, &msg)
            .unwrap_or_else(|e| panic!("seed {seed}: post-fault sign {i} failed: {e}"));
        assert_eq!(sig, sk.sign(&msg).to_bytes(sk.params()));
        // The verify lane must be healthy after the chaos window too.
        assert!(
            client
                .verify(tenant, &msg, &sig)
                .unwrap_or_else(|e| panic!("seed {seed}: post-fault verify {i} failed: {e}")),
            "seed {seed}: post-fault verify {i} rejected an oracle signature"
        );
    }

    // Server-side exactly-once: at quiescence each tenant's admitted
    // requests were all answered, one way or the other.
    let page = server.metrics_page();
    for (tenant, _, _) in &keys {
        let requests = tenant_metric(&page, "hero_server_tenant_requests_total", tenant);
        let completed = tenant_metric(&page, "hero_server_tenant_completed_total", tenant);
        let rejected = tenant_metric(&page, "hero_server_tenant_rejected_total", tenant);
        let inflight = tenant_metric(&page, "hero_server_tenant_inflight", tenant);
        assert_eq!(inflight, 0, "seed {seed}: {tenant} quiescent");
        assert_eq!(
            requests,
            completed + rejected,
            "seed {seed}: {tenant} answered exactly once (page:\n{page})"
        );
    }

    server.shutdown();
}
