//! The hex key-file format shared by the CLI and the server's tenant
//! keystore (moved here from the CLI crate so both load one format).
//!
//! A signing key is stored as a small self-describing text file:
//!
//! ```text
//! hero-sign-key v1
//! params: SPHINCS+-128f
//! alg: sha256
//! sk_seed: <hex>
//! sk_prf: <hex>
//! pk_seed: <hex>
//! ```
//!
//! SHA and SHAKE shapes alike: `params:` carries any label
//! [`Params::from_label`] accepts and `alg:` any label
//! [`HashAlg::from_label`] accepts. The public root is recomputed on
//! load (top-subtree keygen only, a few thousand hashes), which doubles
//! as an integrity check.

use hero_sphincs::hash::HashAlg;
use hero_sphincs::{keygen_from_seeds_with_alg, Params, SigningKey, VerifyingKey};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// A structurally invalid key or public-key file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyfileError(pub String);

impl fmt::Display for KeyfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key file: {}", self.0)
    }
}

impl std::error::Error for KeyfileError {}

/// Serializes bytes as lowercase hex.
pub fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Parses lowercase/uppercase hex.
///
/// # Errors
///
/// On odd length or non-hex characters.
pub fn from_hex(s: &str) -> Result<Vec<u8>, KeyfileError> {
    let s = s.trim();
    if !s.len().is_multiple_of(2) {
        return Err(KeyfileError("hex string has odd length".to_string()));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16)
                .map_err(|_| KeyfileError(format!("bad hex at {i}")))
        })
        .collect()
}

/// Renders a key file from its seed material.
pub fn encode(
    params: &Params,
    alg: HashAlg,
    sk_seed: &[u8],
    sk_prf: &[u8],
    pk_seed: &[u8],
) -> String {
    format!(
        "hero-sign-key v1\nparams: {}\nalg: {}\nsk_seed: {}\nsk_prf: {}\npk_seed: {}\n",
        params.name(),
        alg.label(),
        to_hex(sk_seed),
        to_hex(sk_prf),
        to_hex(pk_seed),
    )
}

fn field<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    label: &str,
) -> Result<String, KeyfileError> {
    let line = lines
        .next()
        .ok_or_else(|| KeyfileError(format!("missing field '{label}'")))?;
    line.strip_prefix(&format!("{label}: "))
        .map(str::to_string)
        .ok_or_else(|| KeyfileError(format!("expected '{label}: …', got '{line}'")))
}

fn parse_params(label: &str) -> Result<Params, KeyfileError> {
    Params::from_label(label)
        .ok_or_else(|| KeyfileError(format!("unknown parameter set '{label}'")))
}

fn parse_alg(label: &str) -> Result<HashAlg, KeyfileError> {
    HashAlg::from_label(label)
        .ok_or_else(|| KeyfileError(format!("unknown hash algorithm '{label}'")))
}

/// Parses a key file and reconstructs the key pair.
///
/// # Errors
///
/// On malformed structure, unknown labels, or wrong seed lengths.
pub fn decode(text: &str) -> Result<(SigningKey, VerifyingKey), KeyfileError> {
    let mut lines = text.lines();
    match lines.next() {
        Some("hero-sign-key v1") => {}
        _ => return Err(KeyfileError("not a hero-sign-key v1 file".to_string())),
    }
    let params = parse_params(&field(&mut lines, "params")?)?;
    let alg = parse_alg(&field(&mut lines, "alg")?)?;
    let sk_seed = from_hex(&field(&mut lines, "sk_seed")?)?;
    let sk_prf = from_hex(&field(&mut lines, "sk_prf")?)?;
    let pk_seed = from_hex(&field(&mut lines, "pk_seed")?)?;
    for (name, v) in [
        ("sk_seed", &sk_seed),
        ("sk_prf", &sk_prf),
        ("pk_seed", &pk_seed),
    ] {
        if v.len() != params.n {
            return Err(KeyfileError(format!(
                "{name} must be {} bytes, got {}",
                params.n,
                v.len()
            )));
        }
    }
    Ok(keygen_from_seeds_with_alg(
        params, alg, sk_seed, sk_prf, pk_seed,
    ))
}

/// A unique sibling temp path for staging an atomic write of `path`
/// (same directory, so the final rename/link never crosses filesystems).
fn staging_path(path: &Path) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let stem = path.file_name().and_then(|n| n.to_str()).unwrap_or("key");
    path.with_file_name(format!(
        ".{stem}.{}-{}.tmp",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ))
}

/// Stages `contents` in a sibling temp file, fsyncs it, then writes it
/// into the staging slot fully before it is published. Returns the temp
/// path; the caller finishes the publish (rename or link) and removes
/// the temp file on failure.
fn stage(path: &Path, contents: &str) -> io::Result<PathBuf> {
    let tmp = staging_path(path);
    let mut file = std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(&tmp)?;
    if let Err(e) =
        io::Write::write_all(&mut file, contents.as_bytes()).and_then(|()| file.sync_all())
    {
        drop(file);
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    Ok(tmp)
}

/// Crash-safe overwrite: `contents` lands at `path` completely or not at
/// all. The bytes are staged in a sibling temp file, fsynced, and
/// renamed into place — a crash at any step leaves either the old file
/// or the new one, never a truncated hybrid.
///
/// # Errors
///
/// Any underlying I/O failure; on rename failure the temp file is
/// removed, leaving `path` untouched.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = stage(path, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Crash-safe *exclusive* create: like [`write_atomic`], but fails with
/// [`io::ErrorKind::AlreadyExists`] when `path` is already present. The
/// staged temp file is published with a hard link, which is atomic and
/// refuses to clobber — so two concurrent writers race safely: exactly
/// one wins, the loser sees `AlreadyExists`, and `path` is never
/// observable half-written.
///
/// # Errors
///
/// [`io::ErrorKind::AlreadyExists`] when `path` exists, or any
/// underlying I/O failure; the temp file is removed either way.
pub fn write_new_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = stage(path, contents)?;
    let published = std::fs::hard_link(&tmp, path);
    let _ = std::fs::remove_file(&tmp);
    published
}

/// Renders a public-key file (`pk_seed || pk_root` in hex, no secrets).
pub fn encode_public(vk: &VerifyingKey) -> String {
    format!(
        "hero-sign-pubkey v1\nparams: {}\nalg: {}\npk: {}\n",
        vk.params().name(),
        vk.alg().label(),
        to_hex(&vk.to_bytes()),
    )
}

/// Parses a public-key file written by [`encode_public`].
///
/// # Errors
///
/// On malformed structure or a wrong-length key.
pub fn decode_public(text: &str) -> Result<VerifyingKey, KeyfileError> {
    let mut lines = text.lines();
    match lines.next() {
        Some("hero-sign-pubkey v1") => {}
        _ => return Err(KeyfileError("not a hero-sign-pubkey v1 file".to_string())),
    }
    let params = parse_params(&field(&mut lines, "params")?)?;
    let alg = parse_alg(&field(&mut lines, "alg")?)?;
    let pk = from_hex(&field(&mut lines, "pk")?)?;
    VerifyingKey::from_bytes(params, alg, &pk).map_err(|e| KeyfileError(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let bytes = vec![0u8, 1, 0xab, 0xff];
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
    }

    #[test]
    fn keyfile_roundtrip_preserves_keys() {
        let p = Params::sphincs_128f();
        let sk_seed = vec![1u8; 16];
        let sk_prf = vec![2u8; 16];
        let pk_seed = vec![3u8; 16];
        let text = encode(&p, HashAlg::Sha256, &sk_seed, &sk_prf, &pk_seed);
        let (sk, vk) = decode(&text).expect("decode");
        assert_eq!(sk.params().name(), "SPHINCS+-128f");
        assert_eq!(sk.sk_seed(), &sk_seed[..]);
        assert_eq!(vk.pk_seed(), &pk_seed[..]);
    }

    #[test]
    fn malformed_files_rejected() {
        assert!(decode("garbage").is_err());
        let p = Params::sphincs_128f();
        let good = encode(&p, HashAlg::Sha256, &[1; 16], &[2; 16], &[3; 16]);
        let truncated: String = good.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(decode(&truncated).is_err());
        let wrong_len = good.replace(&to_hex(&[1u8; 16]), &to_hex(&[1u8; 8]));
        assert!(decode(&wrong_len).is_err());
    }

    #[test]
    fn atomic_writers_publish_whole_files_and_respect_exclusivity() {
        let dir = std::env::temp_dir().join(format!("hero-keyfile-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tenant.key");

        write_new_atomic(&path, "first\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first\n");

        // Exclusive create refuses to clobber, typed as AlreadyExists.
        let err = write_new_atomic(&path, "usurper\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first\n");

        // Overwrite replaces the whole file.
        write_atomic(&path, "second\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second\n");

        // No staging litter survives any of the above.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path() != path)
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shake_keyfiles_roundtrip() {
        let p = Params::shake_128f();
        let text = encode(&p, HashAlg::Shake256, &[4; 16], &[5; 16], &[6; 16]);
        assert!(text.contains("params: SPHINCS+-SHAKE-128f"), "{text}");
        assert!(text.contains("alg: shake256"), "{text}");
        let (sk, vk) = decode(&text).expect("decode");
        assert_eq!(sk.alg(), HashAlg::Shake256);
        assert_eq!(sk.params().name(), "SPHINCS+-SHAKE-128f");
        assert_eq!(encode_public(&vk).lines().nth(2), text.lines().nth(2));
    }
}
