//! Typed wire errors: every failure a server can report crosses the
//! wire as a **stable numeric code** plus a human-readable message.
//!
//! The codes mirror the in-process error surface ([`HeroError`] from the
//! engine, [`ServiceError`] from the micro-batching service) plus the
//! protocol- and tenancy-level failures only a network front-end has
//! (malformed frames, unknown tenants, admission rejections). Codes are
//! part of the protocol contract: **they never change meaning and are
//! never reused** — new failures get new codes. Clients match on
//! [`ErrorCode`], not on message strings.

use hero_sign::service::ServiceError;
use hero_sign::HeroError;
use std::fmt;

/// Stable numeric error codes of wire protocol v1.
///
/// The discriminants are the on-wire `u16` values; see
/// [`ErrorCode::from_u16`] for decoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ErrorCode {
    /// The frame body could not be parsed (truncated fields, bad
    /// lengths, non-UTF-8 tenant).
    Malformed = 1,
    /// The frame declared a protocol version this server does not speak.
    UnsupportedVersion = 2,
    /// The opcode byte is not a known operation.
    UnknownOpcode = 3,
    /// The frame declared a length above the server's
    /// [`crate::server::ServerConfig::max_frame`]. The body was
    /// discarded; the connection stays usable.
    OversizedFrame = 4,
    /// No key is loaded for the tenant named in the request.
    UnknownTenant = 5,
    /// Per-tenant admission control rejected the request: the tenant is
    /// already at its in-flight cap. Back off and retry.
    TenantBusy = 6,
    /// The tenant's bounded sign queue is full
    /// ([`ServiceError::QueueFull`]). Back off and retry.
    QueueFull = 7,
    /// The server (or the tenant's service) is draining
    /// ([`ServiceError::ShuttingDown`]); the request was not accepted.
    ShuttingDown = 8,
    /// An internal invariant broke ([`ServiceError::Internal`] or a
    /// failure with no more specific code).
    Internal = 9,
    /// [`HeroError::InvalidParams`].
    InvalidParams = 10,
    /// [`HeroError::InvalidOptions`].
    InvalidOptions = 11,
    /// [`HeroError::Tuning`].
    Tuning = 12,
    /// [`HeroError::KeyMismatch`].
    KeyMismatch = 13,
    /// [`HeroError::BatchMismatch`].
    BatchMismatch = 14,
    /// A `verify` op ran and the signature did not verify
    /// ([`hero_sphincs::sign::SignError::VerificationFailed`]).
    VerificationFailed = 15,
    /// Any other [`HeroError::Sphincs`] substrate error (signature
    /// parsing, key reconstruction).
    Sphincs = 16,
    /// A tenant key file on disk was structurally invalid.
    Keyfile = 17,
    /// `keygen` for a tenant that already holds a key.
    TenantExists = 18,
    /// A structurally valid frame carried an unusable request (empty
    /// tenant on a keyed op, unsafe tenant name, bad keygen labels).
    BadRequest = 19,
    /// The request's deadline (wire v2 `deadline_ms`) passed before the
    /// server could sign it; the work was shed, not performed. Retrying
    /// is pointless unless the client extends the budget.
    DeadlineExceeded = 20,
}

impl ErrorCode {
    /// Every code, in ascending wire order — the round-trip test and
    /// docs iterate this.
    pub const ALL: [ErrorCode; 20] = [
        ErrorCode::Malformed,
        ErrorCode::UnsupportedVersion,
        ErrorCode::UnknownOpcode,
        ErrorCode::OversizedFrame,
        ErrorCode::UnknownTenant,
        ErrorCode::TenantBusy,
        ErrorCode::QueueFull,
        ErrorCode::ShuttingDown,
        ErrorCode::Internal,
        ErrorCode::InvalidParams,
        ErrorCode::InvalidOptions,
        ErrorCode::Tuning,
        ErrorCode::KeyMismatch,
        ErrorCode::BatchMismatch,
        ErrorCode::VerificationFailed,
        ErrorCode::Sphincs,
        ErrorCode::Keyfile,
        ErrorCode::TenantExists,
        ErrorCode::BadRequest,
        ErrorCode::DeadlineExceeded,
    ];

    /// The on-wire `u16` value.
    pub const fn as_u16(self) -> u16 {
        self as u16
    }

    /// Decodes an on-wire value; `None` for unassigned codes (a client
    /// talking to a newer server maps those to [`ErrorCode::Internal`]
    /// rather than failing the connection).
    pub const fn from_u16(code: u16) -> Option<Self> {
        Some(match code {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::UnsupportedVersion,
            3 => ErrorCode::UnknownOpcode,
            4 => ErrorCode::OversizedFrame,
            5 => ErrorCode::UnknownTenant,
            6 => ErrorCode::TenantBusy,
            7 => ErrorCode::QueueFull,
            8 => ErrorCode::ShuttingDown,
            9 => ErrorCode::Internal,
            10 => ErrorCode::InvalidParams,
            11 => ErrorCode::InvalidOptions,
            12 => ErrorCode::Tuning,
            13 => ErrorCode::KeyMismatch,
            14 => ErrorCode::BatchMismatch,
            15 => ErrorCode::VerificationFailed,
            16 => ErrorCode::Sphincs,
            17 => ErrorCode::Keyfile,
            18 => ErrorCode::TenantExists,
            19 => ErrorCode::BadRequest,
            20 => ErrorCode::DeadlineExceeded,
            _ => return None,
        })
    }

    /// Whether a client should treat this as transient backpressure
    /// (retry after backoff) rather than a hard failure.
    pub const fn is_backpressure(self) -> bool {
        matches!(self, ErrorCode::TenantBusy | ErrorCode::QueueFull)
    }
}

/// A typed protocol error: stable [`ErrorCode`] + human-readable detail.
///
/// This is what rides in an error response frame and what the client
/// library surfaces. Equality compares both fields; match on
/// [`WireError::code`] for control flow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// The stable numeric code.
    pub code: ErrorCode,
    /// Free-form detail for logs and humans; never part of the contract.
    pub message: String,
}

impl WireError {
    /// Builds an error from a code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }

    /// Decodes the on-wire `(code, message)` pair. Unassigned codes
    /// (newer server than client) degrade to [`ErrorCode::Internal`]
    /// with the original code noted in the message.
    pub fn from_wire(code: u16, message: String) -> Self {
        match ErrorCode::from_u16(code) {
            Some(code) => Self { code, message },
            None => Self {
                code: ErrorCode::Internal,
                message: format!("unassigned wire error code {code}: {message}"),
            },
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wire error {} ({:?}): {}",
            self.code.as_u16(),
            self.code,
            self.message
        )
    }
}

impl std::error::Error for WireError {}

impl From<HeroError> for WireError {
    fn from(e: HeroError) -> Self {
        use hero_sphincs::sign::SignError;
        let code = match &e {
            HeroError::InvalidParams(_) => ErrorCode::InvalidParams,
            HeroError::InvalidOptions(_) => ErrorCode::InvalidOptions,
            HeroError::Tuning(_) => ErrorCode::Tuning,
            HeroError::KeyMismatch(_) => ErrorCode::KeyMismatch,
            HeroError::BatchMismatch { .. } => ErrorCode::BatchMismatch,
            HeroError::Sphincs(SignError::VerificationFailed) => ErrorCode::VerificationFailed,
            HeroError::Sphincs(_) => ErrorCode::Sphincs,
            // HeroError is #[non_exhaustive]: future variants degrade to
            // Internal rather than breaking the protocol mapping.
            _ => ErrorCode::Internal,
        };
        Self::new(code, e.to_string())
    }
}

impl From<ServiceError> for WireError {
    fn from(e: ServiceError) -> Self {
        match &e {
            ServiceError::ShuttingDown => Self::new(ErrorCode::ShuttingDown, e.to_string()),
            ServiceError::QueueFull => Self::new(ErrorCode::QueueFull, e.to_string()),
            ServiceError::DeadlineExceeded => Self::new(ErrorCode::DeadlineExceeded, e.to_string()),
            ServiceError::Engine(inner) => {
                let mapped = WireError::from(inner.clone());
                Self::new(mapped.code, e.to_string())
            }
            ServiceError::Internal(_) => Self::new(ErrorCode::Internal, e.to_string()),
            // ServiceError is #[non_exhaustive] too.
            _ => Self::new(ErrorCode::Internal, e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_sign::error::KeyMismatch;
    use hero_sphincs::params::Params;
    use hero_sphincs::sign::SignError;

    #[test]
    fn every_code_round_trips_and_is_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for code in ErrorCode::ALL {
            let wire = code.as_u16();
            assert_eq!(ErrorCode::from_u16(wire), Some(code), "{code:?}");
            assert!(seen.insert(wire), "duplicate wire value {wire}");
        }
        // Codes are dense 1..=N (documented layout of protocol v1).
        assert_eq!(
            seen.iter().copied().collect::<Vec<_>>(),
            (1..=ErrorCode::ALL.len() as u16).collect::<Vec<_>>()
        );
        assert_eq!(ErrorCode::from_u16(0), None);
        assert_eq!(ErrorCode::from_u16(ErrorCode::ALL.len() as u16 + 1), None);
    }

    #[test]
    fn unassigned_codes_degrade_to_internal() {
        let e = WireError::from_wire(60_000, "from the future".to_string());
        assert_eq!(e.code, ErrorCode::Internal);
        assert!(e.message.contains("60000"), "{e}");
    }

    #[test]
    fn hero_error_mapping_is_exhaustive() {
        // One representative per HeroError variant; if a new variant
        // appears, extend this table (and assign it a code).
        let cases: Vec<(HeroError, ErrorCode)> = vec![
            (
                HeroError::InvalidParams("d".into()),
                ErrorCode::InvalidParams,
            ),
            (
                HeroError::InvalidOptions("w".into()),
                ErrorCode::InvalidOptions,
            ),
            (
                HeroError::Tuning(hero_sign::tuning::TuneError::NoCandidate),
                ErrorCode::Tuning,
            ),
            (
                KeyMismatch {
                    engine: Params::sphincs_128f(),
                    key: Params::sphincs_192f(),
                }
                .into_error(),
                ErrorCode::KeyMismatch,
            ),
            (
                HeroError::BatchMismatch {
                    messages: 1,
                    signatures: 2,
                },
                ErrorCode::BatchMismatch,
            ),
            (
                HeroError::Sphincs(SignError::VerificationFailed),
                ErrorCode::VerificationFailed,
            ),
            (
                HeroError::Sphincs(SignError::MalformedSignature("short".into())),
                ErrorCode::Sphincs,
            ),
        ];
        for (err, code) in cases {
            let wire = WireError::from(err.clone());
            assert_eq!(wire.code, code, "{err:?}");
            // Message survives the mapping and the wire round trip.
            let back = WireError::from_wire(wire.code.as_u16(), wire.message.clone());
            assert_eq!(back, wire);
        }
    }

    #[test]
    fn service_error_mapping_is_exhaustive() {
        let cases: Vec<(ServiceError, ErrorCode)> = vec![
            (ServiceError::ShuttingDown, ErrorCode::ShuttingDown),
            (ServiceError::QueueFull, ErrorCode::QueueFull),
            (
                ServiceError::Engine(HeroError::InvalidOptions("x".into())),
                ErrorCode::InvalidOptions,
            ),
            (
                ServiceError::Engine(HeroError::Sphincs(SignError::VerificationFailed)),
                ErrorCode::VerificationFailed,
            ),
            (
                ServiceError::Internal("batch panicked".into()),
                ErrorCode::Internal,
            ),
            (ServiceError::DeadlineExceeded, ErrorCode::DeadlineExceeded),
        ];
        for (err, code) in cases {
            assert_eq!(WireError::from(err.clone()).code, code, "{err:?}");
        }
    }

    #[test]
    fn backpressure_codes_are_flagged() {
        for code in ErrorCode::ALL {
            let expect = matches!(code, ErrorCode::TenantBusy | ErrorCode::QueueFull);
            assert_eq!(code.is_backpressure(), expect, "{code:?}");
        }
    }
}
