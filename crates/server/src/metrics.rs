//! Server metrics: global and per-tenant counters plus the shared
//! latency-percentile machinery, rendered as a plaintext page.
//!
//! The page is deliberately Prometheus-shaped (`name{label="…"} value`
//! lines) without claiming full exposition-format compliance — it is
//! readable with `nc`/`curl`, parseable with `grep`, and served both by
//! the [`crate::wire::Op::Stats`] op and the standalone metrics
//! listener.

use hero_sign::stats::{LatencySummary, LatencyWindow};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-tenant request counters. All relaxed atomics: metrics are
/// monotonic gauges, not synchronization.
#[derive(Debug, Default)]
pub struct TenantCounters {
    /// Requests accepted for this tenant (all ops).
    pub requests: AtomicU64,
    /// Requests answered successfully.
    pub completed: AtomicU64,
    /// Requests rejected with a typed error (admission, queue-full,
    /// engine, verification — anything non-zero on the wire).
    pub rejected: AtomicU64,
}

/// Whole-server metrics state.
#[derive(Debug)]
pub struct Metrics {
    /// Connections the accept loop has handed to handlers.
    pub connections: AtomicU64,
    /// Frames accepted (fully read) across all connections.
    pub requests: AtomicU64,
    /// Responses carrying a typed error.
    pub rejected: AtomicU64,
    /// Sign/sign-batch latency samples (per message, not per batch).
    latency: Mutex<LatencyWindow>,
}

impl Metrics {
    /// A metrics sink keeping the last `latency_window` sign latencies.
    pub fn new(latency_window: usize) -> Self {
        Self {
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            latency: Mutex::new(LatencyWindow::new(latency_window)),
        }
    }

    /// Records one end-to-end sign latency sample.
    pub fn record_latency(&self, sample: std::time::Duration) {
        self.latency.lock().expect("latency window").record(sample);
    }

    /// Current latency summary, if any samples exist.
    pub fn latency_summary(&self) -> Option<LatencySummary> {
        self.latency.lock().expect("latency window").summary()
    }
}

/// One tenant's row in the rendered page.
pub struct TenantRow {
    /// Tenant name.
    pub tenant: String,
    /// Snapshot of the tenant's counters.
    pub requests: u64,
    /// Completed requests.
    pub completed: u64,
    /// Rejected requests.
    pub rejected: u64,
    /// Requests currently admitted and not yet answered.
    pub inflight: u64,
    /// Depth of the tenant's sign-service queue (pending, uncoalesced).
    pub queue_depth: u64,
}

/// Renders the plaintext metrics page.
pub fn render(metrics: &Metrics, tenants: &[TenantRow], draining: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "hero_server_up {}", if draining { 0 } else { 1 });
    let _ = writeln!(
        out,
        "hero_server_connections_total {}",
        metrics.connections.load(Ordering::Relaxed)
    );
    let _ = writeln!(
        out,
        "hero_server_requests_total {}",
        metrics.requests.load(Ordering::Relaxed)
    );
    let _ = writeln!(
        out,
        "hero_server_requests_rejected_total {}",
        metrics.rejected.load(Ordering::Relaxed)
    );
    match metrics.latency_summary() {
        Some(s) => {
            for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
                let _ = writeln!(
                    out,
                    "hero_server_sign_latency_us{{quantile=\"{q}\"}} {:.1}",
                    v.as_secs_f64() * 1e6
                );
            }
            let _ = writeln!(
                out,
                "hero_server_sign_latency_us{{quantile=\"mean\"}} {:.1}",
                s.mean.as_secs_f64() * 1e6
            );
            let _ = writeln!(out, "hero_server_sign_latency_samples {}", s.count);
        }
        None => {
            let _ = writeln!(out, "hero_server_sign_latency_samples 0");
        }
    }
    for row in tenants {
        let t = &row.tenant;
        let _ = writeln!(
            out,
            "hero_server_tenant_requests_total{{tenant=\"{t}\"}} {}",
            row.requests
        );
        let _ = writeln!(
            out,
            "hero_server_tenant_completed_total{{tenant=\"{t}\"}} {}",
            row.completed
        );
        let _ = writeln!(
            out,
            "hero_server_tenant_rejected_total{{tenant=\"{t}\"}} {}",
            row.rejected
        );
        let _ = writeln!(
            out,
            "hero_server_tenant_inflight{{tenant=\"{t}\"}} {}",
            row.inflight
        );
        let _ = writeln!(
            out,
            "hero_server_queue_depth{{tenant=\"{t}\"}} {}",
            row.queue_depth
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn page_renders_counters_and_percentiles() {
        let m = Metrics::new(64);
        m.connections.fetch_add(3, Ordering::Relaxed);
        m.requests.fetch_add(10, Ordering::Relaxed);
        m.rejected.fetch_add(2, Ordering::Relaxed);
        for us in [100u64, 200, 300, 400] {
            m.record_latency(Duration::from_micros(us));
        }
        let rows = vec![TenantRow {
            tenant: "validator-1".into(),
            requests: 6,
            completed: 5,
            rejected: 1,
            inflight: 2,
            queue_depth: 3,
        }];
        let page = render(&m, &rows, false);
        assert!(page.contains("hero_server_up 1"), "{page}");
        assert!(page.contains("hero_server_requests_total 10"), "{page}");
        assert!(
            page.contains("hero_server_sign_latency_us{quantile=\"0.99\"} 400.0"),
            "{page}"
        );
        assert!(
            page.contains("hero_server_queue_depth{tenant=\"validator-1\"} 3"),
            "{page}"
        );
        assert!(
            page.contains("hero_server_tenant_rejected_total{tenant=\"validator-1\"} 1"),
            "{page}"
        );
    }

    #[test]
    fn quiet_server_renders_without_samples() {
        let m = Metrics::new(8);
        let page = render(&m, &[], true);
        assert!(page.contains("hero_server_up 0"), "{page}");
        assert!(
            page.contains("hero_server_sign_latency_samples 0"),
            "{page}"
        );
        assert!(!page.contains("quantile"), "{page}");
    }
}
