//! Server metrics: global and per-tenant counters plus the shared
//! latency-percentile machinery, rendered as a plaintext page.
//!
//! The page is deliberately Prometheus-shaped (`name{label="…"} value`
//! lines) without claiming full exposition-format compliance — it is
//! readable with `nc`/`curl`, parseable with `grep`, and served both by
//! the [`crate::wire::Op::Stats`] op and the standalone metrics
//! listener.

use hero_sign::stats::{LatencySummary, LatencyWindow};
use hero_sign::CacheStats;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-tenant request counters. All relaxed atomics: metrics are
/// monotonic gauges, not synchronization.
#[derive(Debug, Default)]
pub struct TenantCounters {
    /// Requests accepted for this tenant (all ops).
    pub requests: AtomicU64,
    /// Requests answered successfully.
    pub completed: AtomicU64,
    /// Requests rejected with a typed error (admission, queue-full,
    /// engine, verification — anything non-zero on the wire).
    pub rejected: AtomicU64,
    /// Signatures this tenant asked the server to verify (items, not
    /// requests: a verify-batch of 8 counts 8).
    pub verify_requests: AtomicU64,
    /// Verified items whose verdict was *cryptographically invalid*.
    pub verify_invalid: AtomicU64,
    /// Verified items whose signature bytes were structurally malformed
    /// (wrong lengths/shape — never reached the verifier).
    pub verify_malformed: AtomicU64,
}

/// Whole-server metrics state.
#[derive(Debug)]
pub struct Metrics {
    /// Connections the accept loop has handed to handlers.
    pub connections: AtomicU64,
    /// Frames accepted (fully read) across all connections.
    pub requests: AtomicU64,
    /// Responses carrying a typed error.
    pub rejected: AtomicU64,
    /// Requests answered with [`ErrorCode::DeadlineExceeded`] — shed at
    /// receipt or expired while queued, never signed.
    ///
    /// [`ErrorCode::DeadlineExceeded`]: crate::error::ErrorCode::DeadlineExceeded
    pub deadline_expired: AtomicU64,
    /// Poisoned locks reclaimed (the latency window here, plus the
    /// sharded keystore/tenant/engine maps, folded in at render time).
    pub lock_poison_recoveries: AtomicU64,
    /// Sign/sign-batch latency samples (per message, not per batch).
    latency: Mutex<LatencyWindow>,
    /// Verify/verify-batch latency samples (per item, not per batch) —
    /// a separate window so slow signs don't mask fast verifies and
    /// vice versa.
    verify_latency: Mutex<LatencyWindow>,
}

impl Metrics {
    /// A metrics sink keeping the last `latency_window` sign latencies.
    pub fn new(latency_window: usize) -> Self {
        Self {
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            lock_poison_recoveries: AtomicU64::new(0),
            latency: Mutex::new(LatencyWindow::new(latency_window)),
            verify_latency: Mutex::new(LatencyWindow::new(latency_window)),
        }
    }

    /// Locks a latency window, recovering a poisoned lock. Unlike the
    /// sharded maps (whose operations are atomic), a `record` can be
    /// interrupted between the sample write and the cursor advance, so
    /// the consistency re-check after recovery is to clear the window:
    /// an empty percentile report is honest, a half-updated one lies.
    fn window<'a>(
        &self,
        lock: &'a Mutex<LatencyWindow>,
    ) -> std::sync::MutexGuard<'a, LatencyWindow> {
        lock.lock().unwrap_or_else(|poisoned| {
            self.lock_poison_recoveries.fetch_add(1, Ordering::Relaxed);
            // Un-poison so the recovery (and the clear) happens once per
            // poisoning event, not once per subsequent access.
            lock.clear_poison();
            let mut window = poisoned.into_inner();
            window.clear();
            window
        })
    }

    /// Records one end-to-end sign latency sample.
    pub fn record_latency(&self, sample: std::time::Duration) {
        self.window(&self.latency).record(sample);
    }

    /// Current sign latency summary, if any samples exist.
    pub fn latency_summary(&self) -> Option<LatencySummary> {
        self.window(&self.latency).summary()
    }

    /// Records one end-to-end verify latency sample (per item).
    pub fn record_verify_latency(&self, sample: std::time::Duration) {
        self.window(&self.verify_latency).record(sample);
    }

    /// Current verify latency summary, if any samples exist.
    pub fn verify_latency_summary(&self) -> Option<LatencySummary> {
        self.window(&self.verify_latency).summary()
    }
}

/// One tenant's row in the rendered page.
pub struct TenantRow {
    /// Tenant name.
    pub tenant: String,
    /// Snapshot of the tenant's counters.
    pub requests: u64,
    /// Completed requests.
    pub completed: u64,
    /// Rejected requests.
    pub rejected: u64,
    /// Requests currently admitted and not yet answered.
    pub inflight: u64,
    /// Depth of the tenant's sign-service queue (pending, uncoalesced).
    pub queue_depth: u64,
    /// Signatures verified for this tenant (items, not requests).
    pub verify_requests: u64,
    /// Items with a cryptographically-invalid verdict.
    pub verify_invalid: u64,
    /// Items with a structurally-malformed verdict.
    pub verify_malformed: u64,
    /// Depth of the tenant's verify-lane queue.
    pub verify_queue_depth: u64,
}

/// Renders the plaintext metrics page. `shard_poison_recoveries` folds
/// in the sharded maps' reclaim counters (keystore, tenants, engines),
/// which live outside [`Metrics`]; the rendered total also includes the
/// latency-window recoveries counted internally. `cache` is the
/// hypertree-memoization counter snapshot summed across the server's
/// engines (all-zero when no engine exposes a cache).
pub fn render(
    metrics: &Metrics,
    tenants: &[TenantRow],
    draining: bool,
    shard_poison_recoveries: u64,
    cache: &CacheStats,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "hero_server_up {}", if draining { 0 } else { 1 });
    // The resolved hash ISA ladder, as an info-style metric: value is
    // always 1, the tier rides in the label so operators can see (and
    // alert on) which core every signer in this process dispatches to.
    let _ = writeln!(
        out,
        "hero_hash_tier{{primitive=\"sha256\",tier=\"{}\"}} 1",
        hero_sphincs::tier::sha256_tier().label()
    );
    let _ = writeln!(
        out,
        "hero_hash_tier{{primitive=\"keccak\",tier=\"{}\"}} 1",
        hero_sphincs::tier::keccak_tier().label()
    );
    let _ = writeln!(
        out,
        "hero_server_connections_total {}",
        metrics.connections.load(Ordering::Relaxed)
    );
    let _ = writeln!(
        out,
        "hero_server_requests_total {}",
        metrics.requests.load(Ordering::Relaxed)
    );
    let _ = writeln!(
        out,
        "hero_server_requests_rejected_total {}",
        metrics.rejected.load(Ordering::Relaxed)
    );
    let _ = writeln!(
        out,
        "hero_server_deadline_expired_total {}",
        metrics.deadline_expired.load(Ordering::Relaxed)
    );
    let _ = writeln!(
        out,
        "hero_server_lock_poison_recoveries_total {}",
        metrics
            .lock_poison_recoveries
            .load(Ordering::Relaxed)
            .saturating_add(shard_poison_recoveries)
    );
    let _ = writeln!(out, "hero_cache_hits_total {}", cache.hits);
    let _ = writeln!(out, "hero_cache_misses_total {}", cache.misses);
    let _ = writeln!(out, "hero_cache_evictions_total {}", cache.evictions);
    let _ = writeln!(
        out,
        "hero_cache_resident_bytes_total {}",
        cache.resident_bytes
    );
    let _ = writeln!(out, "hero_cache_resident_keys {}", cache.resident_keys);
    match metrics.latency_summary() {
        Some(s) => {
            for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
                let _ = writeln!(
                    out,
                    "hero_server_sign_latency_us{{quantile=\"{q}\"}} {:.1}",
                    v.as_secs_f64() * 1e6
                );
            }
            let _ = writeln!(
                out,
                "hero_server_sign_latency_us{{quantile=\"mean\"}} {:.1}",
                s.mean.as_secs_f64() * 1e6
            );
            let _ = writeln!(out, "hero_server_sign_latency_samples {}", s.count);
        }
        None => {
            let _ = writeln!(out, "hero_server_sign_latency_samples 0");
        }
    }
    match metrics.verify_latency_summary() {
        Some(s) => {
            for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
                let _ = writeln!(
                    out,
                    "hero_verify_latency_us{{quantile=\"{q}\"}} {:.1}",
                    v.as_secs_f64() * 1e6
                );
            }
            let _ = writeln!(
                out,
                "hero_verify_latency_us{{quantile=\"mean\"}} {:.1}",
                s.mean.as_secs_f64() * 1e6
            );
            let _ = writeln!(out, "hero_verify_latency_samples {}", s.count);
        }
        None => {
            let _ = writeln!(out, "hero_verify_latency_samples 0");
        }
    }
    for row in tenants {
        let t = &row.tenant;
        let _ = writeln!(
            out,
            "hero_server_tenant_requests_total{{tenant=\"{t}\"}} {}",
            row.requests
        );
        let _ = writeln!(
            out,
            "hero_server_tenant_completed_total{{tenant=\"{t}\"}} {}",
            row.completed
        );
        let _ = writeln!(
            out,
            "hero_server_tenant_rejected_total{{tenant=\"{t}\"}} {}",
            row.rejected
        );
        let _ = writeln!(
            out,
            "hero_server_tenant_inflight{{tenant=\"{t}\"}} {}",
            row.inflight
        );
        let _ = writeln!(
            out,
            "hero_server_queue_depth{{tenant=\"{t}\"}} {}",
            row.queue_depth
        );
        let _ = writeln!(
            out,
            "hero_verify_requests_total{{tenant=\"{t}\"}} {}",
            row.verify_requests
        );
        let _ = writeln!(
            out,
            "hero_verify_invalid_total{{tenant=\"{t}\"}} {}",
            row.verify_invalid
        );
        let _ = writeln!(
            out,
            "hero_verify_malformed_total{{tenant=\"{t}\"}} {}",
            row.verify_malformed
        );
        let _ = writeln!(
            out,
            "hero_verify_queue_depth{{tenant=\"{t}\"}} {}",
            row.verify_queue_depth
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn page_renders_counters_and_percentiles() {
        let m = Metrics::new(64);
        m.connections.fetch_add(3, Ordering::Relaxed);
        m.requests.fetch_add(10, Ordering::Relaxed);
        m.rejected.fetch_add(2, Ordering::Relaxed);
        for us in [100u64, 200, 300, 400] {
            m.record_latency(Duration::from_micros(us));
        }
        for us in [50u64, 60, 70, 80] {
            m.record_verify_latency(Duration::from_micros(us));
        }
        let rows = vec![TenantRow {
            tenant: "validator-1".into(),
            requests: 6,
            completed: 5,
            rejected: 1,
            inflight: 2,
            queue_depth: 3,
            verify_requests: 12,
            verify_invalid: 2,
            verify_malformed: 1,
            verify_queue_depth: 4,
        }];
        m.deadline_expired.fetch_add(4, Ordering::Relaxed);
        let cache = CacheStats {
            hits: 9,
            misses: 4,
            evictions: 1,
            resident_bytes: 2048,
            resident_keys: 2,
            resident_subtrees: 6,
        };
        let page = render(&m, &rows, false, 3, &cache);
        assert!(page.contains("hero_server_up 1"), "{page}");
        assert!(page.contains("hero_cache_hits_total 9"), "{page}");
        assert!(page.contains("hero_cache_misses_total 4"), "{page}");
        assert!(page.contains("hero_cache_evictions_total 1"), "{page}");
        assert!(
            page.contains("hero_cache_resident_bytes_total 2048"),
            "{page}"
        );
        assert!(page.contains("hero_server_requests_total 10"), "{page}");
        assert!(
            page.contains("hero_server_deadline_expired_total 4"),
            "{page}"
        );
        assert!(
            page.contains("hero_server_lock_poison_recoveries_total 3"),
            "{page}"
        );
        assert!(
            page.contains("hero_server_sign_latency_us{quantile=\"0.99\"} 400.0"),
            "{page}"
        );
        assert!(
            page.contains("hero_server_queue_depth{tenant=\"validator-1\"} 3"),
            "{page}"
        );
        assert!(
            page.contains("hero_server_tenant_rejected_total{tenant=\"validator-1\"} 1"),
            "{page}"
        );
        assert!(
            page.contains("hero_verify_latency_us{quantile=\"0.99\"} 80.0"),
            "{page}"
        );
        assert!(page.contains("hero_verify_latency_samples 4"), "{page}");
        assert!(
            page.contains("hero_verify_requests_total{tenant=\"validator-1\"} 12"),
            "{page}"
        );
        assert!(
            page.contains("hero_verify_invalid_total{tenant=\"validator-1\"} 2"),
            "{page}"
        );
        assert!(
            page.contains("hero_verify_malformed_total{tenant=\"validator-1\"} 1"),
            "{page}"
        );
        assert!(
            page.contains("hero_verify_queue_depth{tenant=\"validator-1\"} 4"),
            "{page}"
        );
    }

    #[test]
    fn poisoned_latency_window_recovers_cleared_and_counted() {
        let m = std::sync::Arc::new(Metrics::new(8));
        m.record_latency(Duration::from_micros(100));
        let poisoner = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.latency.lock().unwrap();
            panic!("injected fault: mid-record");
        })
        .join();
        // Recovery clears the window (the half-updated samples cannot be
        // trusted) and counts the event; recording keeps working.
        assert!(m.latency_summary().is_none());
        assert!(m.lock_poison_recoveries.load(Ordering::Relaxed) >= 1);
        m.record_latency(Duration::from_micros(200));
        assert_eq!(m.latency_summary().unwrap().count, 1);
    }

    #[test]
    fn quiet_server_renders_without_samples() {
        let m = Metrics::new(8);
        let page = render(&m, &[], true, 0, &CacheStats::default());
        assert!(page.contains("hero_server_up 0"), "{page}");
        assert!(page.contains("hero_cache_hits_total 0"), "{page}");
        assert!(
            page.contains("hero_server_sign_latency_samples 0"),
            "{page}"
        );
        assert!(page.contains("hero_verify_latency_samples 0"), "{page}");
        assert!(!page.contains("quantile"), "{page}");
    }
}
