//! The multi-tenant key store: tenant name → key pair, behind sharded
//! reader-writer locks.
//!
//! Sharding keeps key lookups off a single global lock: the tenant name
//! hashes (FNV-1a — the same cheap hash the tuning cache uses for file
//! names) to one of [`ShardedMap::SHARDS`] independent `RwLock`s, so
//! concurrent connections for different tenants never contend, and even
//! same-shard readers share the read lock. Writes (key loading, keygen)
//! are rare and touch one shard.
//!
//! Keys come from the CLI's key-file format ([`crate::keyfile`]), SHA
//! and SHAKE shapes alike: [`KeyStore::load_dir`] ingests every `*.key`
//! file in a directory, tenant = file stem.

use crate::error::{ErrorCode, WireError};
use crate::keyfile;
use hero_sphincs::sign::{SigningKey, VerifyingKey};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// One tenant's key material.
#[derive(Clone, Debug)]
pub struct TenantKey {
    /// The signing key (drives the tenant's `SignService`).
    pub sk: SigningKey,
    /// The matching verifying key (drives the `verify` op).
    pub vk: VerifyingKey,
}

/// A string-keyed map split across independently locked shards.
///
/// Generic over the value so the server reuses it for both the key
/// store and the per-tenant runtime state (service + admission
/// counters).
/// Shard locks are
/// *poison-recovering*: a reader or writer that panicked while holding
/// one (say, an injected fault inside a value constructor) marks the
/// lock poisoned, but the map itself stays structurally valid — every
/// mutation is a single `HashMap` operation that either happened or did
/// not. Recovery therefore reclaims the guard, re-checks consistency by
/// construction, and counts the event in
/// [`ShardedMap::poison_recoveries`] so the metrics page surfaces it.
#[derive(Debug)]
pub struct ShardedMap<V> {
    shards: Vec<RwLock<HashMap<String, V>>>,
    poison_recoveries: AtomicU64,
}

impl<V: Clone> ShardedMap<V> {
    /// Shard count: enough that a hot accept loop does not serialize on
    /// one lock, small enough to stay cache-friendly.
    pub const SHARDS: usize = 16;

    /// An empty map.
    pub fn new() -> Self {
        Self {
            shards: (0..Self::SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            poison_recoveries: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> &RwLock<HashMap<String, V>> {
        // FNV-1a over the tenant name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h % Self::SHARDS as u64) as usize]
    }

    /// Read-locks a shard, recovering (and counting) a poisoned lock
    /// instead of propagating the panic to every future caller.
    fn read_shard<'a>(
        &'a self,
        lock: &'a RwLock<HashMap<String, V>>,
    ) -> RwLockReadGuard<'a, HashMap<String, V>> {
        lock.read().unwrap_or_else(|poisoned| {
            self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
            // Un-poison so one panic is counted once, not on every
            // subsequent access to the shard.
            lock.clear_poison();
            poisoned.into_inner()
        })
    }

    /// Write-lock analogue of [`ShardedMap::read_shard`].
    fn write_shard<'a>(
        &'a self,
        lock: &'a RwLock<HashMap<String, V>>,
    ) -> RwLockWriteGuard<'a, HashMap<String, V>> {
        lock.write().unwrap_or_else(|poisoned| {
            self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
            lock.clear_poison();
            poisoned.into_inner()
        })
    }

    /// How many times a poisoned shard lock was reclaimed. Non-zero
    /// means some caller panicked while holding a shard — worth alerting
    /// on even though the map recovers.
    pub fn poison_recoveries(&self) -> u64 {
        self.poison_recoveries.load(Ordering::Relaxed)
    }

    /// Clones the value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<V> {
        self.read_shard(self.shard(key)).get(key).cloned()
    }

    /// Inserts `value` unless `key` is already present; returns whether
    /// the insert happened.
    pub fn insert_new(&self, key: &str, value: V) -> bool {
        let mut shard = self.write_shard(self.shard(key));
        if shard.contains_key(key) {
            return false;
        }
        shard.insert(key.to_string(), value);
        true
    }

    /// Clones the value for `key`, inserting `make()` first when absent.
    pub fn get_or_insert_with(&self, key: &str, make: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(key) {
            return v;
        }
        let mut shard = self.write_shard(self.shard(key));
        shard.entry(key.to_string()).or_insert_with(make).clone()
    }

    /// Fallible [`ShardedMap::get_or_insert_with`]: when `key` is
    /// absent, `make()` runs *outside* the shard lock (constructors may
    /// be slow — engine builds, service spawns — and must not stall
    /// readers of sibling keys) and its error passes straight through
    /// without inserting anything. If a racing caller inserted while
    /// `make()` ran, that winner's value is returned and ours dropped,
    /// so all callers agree on one resident value.
    pub fn get_or_try_insert_with<E>(
        &self,
        key: &str,
        make: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        if let Some(v) = self.get(key) {
            return Ok(v);
        }
        let made = make()?;
        let mut shard = self.write_shard(self.shard(key));
        Ok(shard.entry(key.to_string()).or_insert(made).clone())
    }

    /// All keys, sorted (crosses every shard; for listings and metrics,
    /// not hot paths).
    pub fn keys(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| self.read_shard(s).keys().cloned().collect::<Vec<_>>())
            .collect();
        out.sort();
        out
    }

    /// All `(key, value)` pairs, sorted by key.
    pub fn entries(&self) -> Vec<(String, V)> {
        let mut out: Vec<(String, V)> = self
            .shards
            .iter()
            .flat_map(|s| {
                self.read_shard(s)
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.read_shard(s).len()).sum()
    }

    /// Whether no entries exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<V: Clone> Default for ShardedMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// The tenant key store the server dispatches against.
#[derive(Debug, Default)]
pub struct KeyStore {
    keys: ShardedMap<Arc<TenantKey>>,
}

impl KeyStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a key pair for `tenant`.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::TenantExists`] when the tenant already holds a key —
    /// keys are never silently replaced over the network.
    pub fn insert(
        &self,
        tenant: &str,
        sk: SigningKey,
        vk: VerifyingKey,
    ) -> Result<Arc<TenantKey>, WireError> {
        let entry = Arc::new(TenantKey { sk, vk });
        if self.keys.insert_new(tenant, Arc::clone(&entry)) {
            Ok(entry)
        } else {
            Err(WireError::new(
                ErrorCode::TenantExists,
                format!("tenant '{tenant}' already holds a key"),
            ))
        }
    }

    /// Looks a tenant's key up.
    pub fn get(&self, tenant: &str) -> Option<Arc<TenantKey>> {
        self.keys.get(tenant)
    }

    /// Loads every `*.key` file in `dir` (tenant = file stem), SHA and
    /// SHAKE key files alike. Returns the tenants loaded, sorted.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::Keyfile`] naming the offending file on I/O or parse
    /// failure, or on a duplicate tenant.
    pub fn load_dir(&self, dir: &Path) -> Result<Vec<String>, WireError> {
        let entries = std::fs::read_dir(dir)
            .map_err(|e| WireError::new(ErrorCode::Keyfile, format!("{}: {e}", dir.display())))?;
        let mut loaded = Vec::new();
        for entry in entries {
            let path = entry
                .map_err(|e| WireError::new(ErrorCode::Keyfile, format!("{}: {e}", dir.display())))?
                .path();
            if path.extension().and_then(|e| e.to_str()) != Some("key") {
                continue;
            }
            let Some(tenant) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            if hero_sign::faults::fire(crate::faults::KEYSTORE_IO) {
                return Err(WireError::new(
                    ErrorCode::Keyfile,
                    format!("{}: injected keystore I/O fault", path.display()),
                ));
            }
            let text = std::fs::read_to_string(&path).map_err(|e| {
                WireError::new(ErrorCode::Keyfile, format!("{}: {e}", path.display()))
            })?;
            let (sk, vk) = keyfile::decode(&text).map_err(|e| {
                WireError::new(ErrorCode::Keyfile, format!("{}: {e}", path.display()))
            })?;
            self.insert(tenant, sk, vk)?;
            loaded.push(tenant.to_string());
        }
        loaded.sort();
        Ok(loaded)
    }

    /// All registered tenants, sorted.
    pub fn tenants(&self) -> Vec<String> {
        self.keys.keys()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the store holds no tenants.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Poisoned-lock recoveries in the underlying sharded map (see
    /// [`ShardedMap::poison_recoveries`]).
    pub fn poison_recoveries(&self) -> u64 {
        self.keys.poison_recoveries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_sphincs::hash::HashAlg;
    use hero_sphincs::params::Params;

    fn tiny_key(seed: u8) -> (SigningKey, VerifyingKey) {
        let mut p = Params::sphincs_128f();
        p.h = 4;
        p.d = 2;
        p.log_t = 3;
        p.k = 4;
        hero_sphincs::keygen_from_seeds_with_alg(
            p,
            HashAlg::Sha256,
            vec![seed; p.n],
            vec![seed.wrapping_add(1); p.n],
            vec![seed.wrapping_add(2); p.n],
        )
    }

    #[test]
    fn insert_get_and_duplicate_rejection() {
        let store = KeyStore::new();
        let (sk, vk) = tiny_key(1);
        store.insert("alice", sk.clone(), vk).unwrap();
        assert_eq!(store.get("alice").unwrap().sk.sk_seed(), sk.sk_seed());
        assert!(store.get("bob").is_none());
        let (sk2, vk2) = tiny_key(2);
        let err = store.insert("alice", sk2, vk2).unwrap_err();
        assert_eq!(err.code, ErrorCode::TenantExists);
        assert_eq!(store.tenants(), vec!["alice".to_string()]);
    }

    #[test]
    fn sharded_map_spreads_and_lists() {
        let map: ShardedMap<usize> = ShardedMap::new();
        for i in 0..100 {
            assert!(map.insert_new(&format!("tenant-{i}"), i));
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map.get("tenant-42"), Some(42));
        assert_eq!(map.keys().len(), 100);
        assert_eq!(map.get_or_insert_with("tenant-42", || 999), 42);
        assert_eq!(map.get_or_insert_with("fresh", || 7), 7);
        let entries = map.entries();
        assert_eq!(entries.len(), 101);
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn get_or_try_insert_with_inserts_once_and_propagates_errors() {
        let map: ShardedMap<usize> = ShardedMap::new();
        // A failing constructor leaves no residue: a later success for
        // the same key runs the constructor again and sticks.
        let err: Result<usize, &str> = map.get_or_try_insert_with("t", || Err("engine build"));
        assert_eq!(err, Err("engine build"));
        assert_eq!(map.get("t"), None);
        assert_eq!(map.get_or_try_insert_with::<&str>("t", || Ok(5)), Ok(5));
        // Present keys never re-run the constructor (it would panic).
        assert_eq!(
            map.get_or_try_insert_with::<&str>("t", || panic!("must not rebuild")),
            Ok(5)
        );
    }

    #[test]
    fn poisoned_shard_lock_recovers_and_is_counted() {
        let map: Arc<ShardedMap<usize>> = Arc::new(ShardedMap::new());
        map.insert_new("survivor", 1);
        // Poison the shard holding "survivor" by panicking inside
        // get_or_insert_with's value constructor while the write lock is
        // held — the injected-fault shape chaos schedules produce.
        let poisoner = Arc::clone(&map);
        let _ = std::thread::spawn(move || {
            poisoner.get_or_insert_with("doomed", || panic!("injected fault: value ctor"));
        })
        .join();
        assert_eq!(map.poison_recoveries(), 0, "nothing recovered yet");
        // The poisoned shard's map never held the failed entry (the
        // consistency argument is per-operation atomicity), and probing
        // it both works and counts the recovery.
        assert_eq!(map.get("doomed"), None);
        assert!(map.poison_recoveries() >= 1);
        // Every access path keeps working, including writes to the
        // recovered shard and full-map listings.
        assert!(map.insert_new("doomed", 2));
        assert_eq!(map.get("doomed"), Some(2));
        assert_eq!(map.get("survivor"), Some(1));
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn load_dir_ingests_sha_and_shake_keyfiles() {
        let dir = std::env::temp_dir().join(format!("hero-keystore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sha = Params::sphincs_128f();
        let shake = Params::shake_128f();
        std::fs::write(
            dir.join("val-a.key"),
            keyfile::encode(&sha, HashAlg::Sha256, &[1; 16], &[2; 16], &[3; 16]),
        )
        .unwrap();
        std::fs::write(
            dir.join("val-b.key"),
            keyfile::encode(&shake, HashAlg::Shake256, &[4; 16], &[5; 16], &[6; 16]),
        )
        .unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();

        let store = KeyStore::new();
        let loaded = store.load_dir(&dir).unwrap();
        assert_eq!(loaded, vec!["val-a".to_string(), "val-b".to_string()]);
        assert_eq!(store.get("val-a").unwrap().sk.alg(), HashAlg::Sha256);
        assert_eq!(store.get("val-b").unwrap().sk.alg(), HashAlg::Shake256);
        assert_eq!(
            store.get("val-b").unwrap().sk.params().name(),
            "SPHINCS+-SHAKE-128f"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_dir_reports_bad_files_typed() {
        let dir = std::env::temp_dir().join(format!("hero-keystore-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("broken.key"), "not a key file").unwrap();
        let store = KeyStore::new();
        let err = store.load_dir(&dir).unwrap_err();
        assert_eq!(err.code, ErrorCode::Keyfile);
        assert!(err.message.contains("broken.key"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
