//! The multi-tenant key store: tenant name → key pair, behind sharded
//! reader-writer locks.
//!
//! Sharding keeps key lookups off a single global lock: the tenant name
//! hashes (FNV-1a — the same cheap hash the tuning cache uses for file
//! names) to one of [`ShardedMap::SHARDS`] independent `RwLock`s, so
//! concurrent connections for different tenants never contend, and even
//! same-shard readers share the read lock. Writes (key loading, keygen)
//! are rare and touch one shard.
//!
//! Keys come from the CLI's key-file format ([`crate::keyfile`]), SHA
//! and SHAKE shapes alike: [`KeyStore::load_dir`] ingests every `*.key`
//! file in a directory, tenant = file stem.

use crate::error::{ErrorCode, WireError};
use crate::keyfile;
use hero_sphincs::sign::{SigningKey, VerifyingKey};
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, RwLock};

/// One tenant's key material.
#[derive(Clone, Debug)]
pub struct TenantKey {
    /// The signing key (drives the tenant's `SignService`).
    pub sk: SigningKey,
    /// The matching verifying key (drives the `verify` op).
    pub vk: VerifyingKey,
}

/// A string-keyed map split across independently locked shards.
///
/// Generic over the value so the server reuses it for both the key
/// store and the per-tenant runtime state (service + admission
/// counters).
#[derive(Debug)]
pub struct ShardedMap<V> {
    shards: Vec<RwLock<HashMap<String, V>>>,
}

impl<V: Clone> ShardedMap<V> {
    /// Shard count: enough that a hot accept loop does not serialize on
    /// one lock, small enough to stay cache-friendly.
    pub const SHARDS: usize = 16;

    /// An empty map.
    pub fn new() -> Self {
        Self {
            shards: (0..Self::SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, key: &str) -> &RwLock<HashMap<String, V>> {
        // FNV-1a over the tenant name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h % Self::SHARDS as u64) as usize]
    }

    /// Clones the value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<V> {
        self.shard(key)
            .read()
            .expect("shard lock")
            .get(key)
            .cloned()
    }

    /// Inserts `value` unless `key` is already present; returns whether
    /// the insert happened.
    pub fn insert_new(&self, key: &str, value: V) -> bool {
        let mut shard = self.shard(key).write().expect("shard lock");
        if shard.contains_key(key) {
            return false;
        }
        shard.insert(key.to_string(), value);
        true
    }

    /// Clones the value for `key`, inserting `make()` first when absent.
    pub fn get_or_insert_with(&self, key: &str, make: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(key) {
            return v;
        }
        let mut shard = self.shard(key).write().expect("shard lock");
        shard.entry(key.to_string()).or_insert_with(make).clone()
    }

    /// All keys, sorted (crosses every shard; for listings and metrics,
    /// not hot paths).
    pub fn keys(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("shard lock")
                    .keys()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort();
        out
    }

    /// All `(key, value)` pairs, sorted by key.
    pub fn entries(&self) -> Vec<(String, V)> {
        let mut out: Vec<(String, V)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("shard lock")
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock").len())
            .sum()
    }

    /// Whether no entries exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<V: Clone> Default for ShardedMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// The tenant key store the server dispatches against.
#[derive(Debug, Default)]
pub struct KeyStore {
    keys: ShardedMap<Arc<TenantKey>>,
}

impl KeyStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a key pair for `tenant`.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::TenantExists`] when the tenant already holds a key —
    /// keys are never silently replaced over the network.
    pub fn insert(
        &self,
        tenant: &str,
        sk: SigningKey,
        vk: VerifyingKey,
    ) -> Result<Arc<TenantKey>, WireError> {
        let entry = Arc::new(TenantKey { sk, vk });
        if self.keys.insert_new(tenant, Arc::clone(&entry)) {
            Ok(entry)
        } else {
            Err(WireError::new(
                ErrorCode::TenantExists,
                format!("tenant '{tenant}' already holds a key"),
            ))
        }
    }

    /// Looks a tenant's key up.
    pub fn get(&self, tenant: &str) -> Option<Arc<TenantKey>> {
        self.keys.get(tenant)
    }

    /// Loads every `*.key` file in `dir` (tenant = file stem), SHA and
    /// SHAKE key files alike. Returns the tenants loaded, sorted.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::Keyfile`] naming the offending file on I/O or parse
    /// failure, or on a duplicate tenant.
    pub fn load_dir(&self, dir: &Path) -> Result<Vec<String>, WireError> {
        let entries = std::fs::read_dir(dir)
            .map_err(|e| WireError::new(ErrorCode::Keyfile, format!("{}: {e}", dir.display())))?;
        let mut loaded = Vec::new();
        for entry in entries {
            let path = entry
                .map_err(|e| WireError::new(ErrorCode::Keyfile, format!("{}: {e}", dir.display())))?
                .path();
            if path.extension().and_then(|e| e.to_str()) != Some("key") {
                continue;
            }
            let Some(tenant) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let text = std::fs::read_to_string(&path).map_err(|e| {
                WireError::new(ErrorCode::Keyfile, format!("{}: {e}", path.display()))
            })?;
            let (sk, vk) = keyfile::decode(&text).map_err(|e| {
                WireError::new(ErrorCode::Keyfile, format!("{}: {e}", path.display()))
            })?;
            self.insert(tenant, sk, vk)?;
            loaded.push(tenant.to_string());
        }
        loaded.sort();
        Ok(loaded)
    }

    /// All registered tenants, sorted.
    pub fn tenants(&self) -> Vec<String> {
        self.keys.keys()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the store holds no tenants.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_sphincs::hash::HashAlg;
    use hero_sphincs::params::Params;

    fn tiny_key(seed: u8) -> (SigningKey, VerifyingKey) {
        let mut p = Params::sphincs_128f();
        p.h = 4;
        p.d = 2;
        p.log_t = 3;
        p.k = 4;
        hero_sphincs::keygen_from_seeds_with_alg(
            p,
            HashAlg::Sha256,
            vec![seed; p.n],
            vec![seed.wrapping_add(1); p.n],
            vec![seed.wrapping_add(2); p.n],
        )
    }

    #[test]
    fn insert_get_and_duplicate_rejection() {
        let store = KeyStore::new();
        let (sk, vk) = tiny_key(1);
        store.insert("alice", sk.clone(), vk).unwrap();
        assert_eq!(store.get("alice").unwrap().sk.sk_seed(), sk.sk_seed());
        assert!(store.get("bob").is_none());
        let (sk2, vk2) = tiny_key(2);
        let err = store.insert("alice", sk2, vk2).unwrap_err();
        assert_eq!(err.code, ErrorCode::TenantExists);
        assert_eq!(store.tenants(), vec!["alice".to_string()]);
    }

    #[test]
    fn sharded_map_spreads_and_lists() {
        let map: ShardedMap<usize> = ShardedMap::new();
        for i in 0..100 {
            assert!(map.insert_new(&format!("tenant-{i}"), i));
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map.get("tenant-42"), Some(42));
        assert_eq!(map.keys().len(), 100);
        assert_eq!(map.get_or_insert_with("tenant-42", || 999), 42);
        assert_eq!(map.get_or_insert_with("fresh", || 7), 7);
        let entries = map.entries();
        assert_eq!(entries.len(), 101);
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn load_dir_ingests_sha_and_shake_keyfiles() {
        let dir = std::env::temp_dir().join(format!("hero-keystore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sha = Params::sphincs_128f();
        let shake = Params::shake_128f();
        std::fs::write(
            dir.join("val-a.key"),
            keyfile::encode(&sha, HashAlg::Sha256, &[1; 16], &[2; 16], &[3; 16]),
        )
        .unwrap();
        std::fs::write(
            dir.join("val-b.key"),
            keyfile::encode(&shake, HashAlg::Shake256, &[4; 16], &[5; 16], &[6; 16]),
        )
        .unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();

        let store = KeyStore::new();
        let loaded = store.load_dir(&dir).unwrap();
        assert_eq!(loaded, vec!["val-a".to_string(), "val-b".to_string()]);
        assert_eq!(store.get("val-a").unwrap().sk.alg(), HashAlg::Sha256);
        assert_eq!(store.get("val-b").unwrap().sk.alg(), HashAlg::Shake256);
        assert_eq!(
            store.get("val-b").unwrap().sk.params().name(),
            "SPHINCS+-SHAKE-128f"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_dir_reports_bad_files_typed() {
        let dir = std::env::temp_dir().join(format!("hero-keystore-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("broken.key"), "not a key file").unwrap();
        let store = KeyStore::new();
        let err = store.load_dir(&dir).unwrap_err();
        assert_eq!(err.code, ErrorCode::Keyfile);
        assert!(err.message.contains("broken.key"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
