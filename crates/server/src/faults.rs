//! hero-server's named fault points for the deterministic
//! fault-injection engine in [`hero_sign::faults`].
//!
//! The engine itself (schedule parsing, seeded decisions, install /
//! clear) lives in the core crate; this module only registers the
//! server-layer point names so one `HERO_FAULTS` schedule can reach
//! from the TCP edge down to the executor. See
//! `docs/ARCHITECTURE.md` § "Failure model and fault injection" for the
//! full catalog.

/// Connection point, evaluated before each frame read: a fired **fail**
/// spec closes the connection as if the peer vanished. Fires *between*
/// requests, never between accept-and-answer, so the exactly-once
/// guarantee is unaffected — the client sees a transport error and may
/// safely retry.
pub const SERVER_CONN_DROP: &str = "server.conn.drop";

/// Response-write point: a fired **fail** spec writes only a prefix of
/// the response frame and then closes the connection, modeling a peer
/// or network that dies mid-write. The client observes a truncated
/// frame as an I/O error (retry-safe: signing is deterministic).
pub const SERVER_WRITE_PARTIAL: &str = "server.write.partial";

/// Response-write point intended for **delay** specs: stalls the
/// response write, modeling a congested or half-dead peer. Pairs with
/// the client's socket timeouts.
pub const SERVER_WRITE_SLOW: &str = "server.write.slow";

/// Keystore I/O point, evaluated per key file read: a fired **fail**
/// spec turns the read into a typed [`ErrorCode::Keyfile`] failure.
///
/// [`ErrorCode::Keyfile`]: crate::error::ErrorCode::Keyfile
pub const KEYSTORE_IO: &str = "keystore.io";
