//! hero-server: a network-facing multi-tenant sign/verify service over
//! a length-prefixed TCP protocol.
//!
//! This crate turns the in-process signing stack — [`HeroSigner`]
//! engines on a shared [`Executor`] worker pool, fronted by per-key
//! micro-batching [`SignService`]s — into a service a fleet of clients
//! can share:
//!
//! * [`wire`] — the versioned binary protocol: `u32` length prefix,
//!   request id, tenant, opcode (keygen / sign / sign-batch / verify /
//!   stats), big-endian throughout;
//! * [`error`] — stable numeric error codes mirroring
//!   [`HeroError`](hero_sign::HeroError) and
//!   [`ServiceError`](hero_sign::ServiceError) as a protocol contract;
//! * [`keyfile`] — the hex key-file format (shared with the CLI);
//! * [`keystore`] — tenant → key pair behind sharded locks;
//! * [`server`] — the TCP server: per-tenant services and admission
//!   control, fair dequeueing on the shared executor, graceful drain
//!   (every accepted request answered exactly once), plaintext metrics;
//! * [`client`] — a blocking client used by the CLI's `serve` /
//!   `remote-sign` commands and by `bench_server`;
//! * [`metrics`] — counters and latency percentiles behind the `stats`
//!   op and the metrics listener.
//!
//! Everything is `std`-only: hand-rolled framing over `TcpListener` /
//! `TcpStream`, thread-per-connection, no async runtime — batching
//! parallelism lives below in the service/executor layers, exactly
//! where the paper puts it.
//!
//! ```no_run
//! use hero_server::client::Client;
//! use hero_server::keystore::KeyStore;
//! use hero_server::server::{hero_engine_factory, Server, ServerConfig};
//!
//! let factory = hero_engine_factory(None)?;
//! let keystore = KeyStore::new();
//! keystore.load_dir(std::path::Path::new("keys/"))?;
//! let server = Server::start(factory, keystore, ServerConfig::default())?;
//!
//! let mut client = Client::connect(server.local_addr())?;
//! let sig = client.sign("validator-1", b"attestation")?;
//! assert!(client.verify("validator-1", b"attestation", &sig)?);
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`HeroSigner`]: hero_sign::HeroSigner
//! [`Executor`]: hero_task_graph::Executor
//! [`SignService`]: hero_sign::SignService

pub mod client;
pub mod error;
pub mod faults;
pub mod keyfile;
pub mod keystore;
pub mod metrics;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError, KeygenReply, VerifyVerdict};
pub use error::{ErrorCode, WireError};
pub use keystore::{KeyStore, ShardedMap, TenantKey};
pub use server::{hero_engine_factory, Server, ServerConfig, ServerError, SignerFactory};
pub use wire::{Op, Request, Response, WIRE_VERSION};
