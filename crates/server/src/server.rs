//! The TCP server: accept loop, per-connection handlers, per-tenant
//! services with admission control, and graceful drain.
//!
//! ## How the listener maps onto the `SignService`/`Executor` stack
//!
//! Every *tenant* gets its own [`SignService`] (own bounded queue, own
//! micro-batcher thread) started lazily on the tenant's first request.
//! All services share one engine per parameter set — and all engines
//! share one persistent [`hero_task_graph::Executor`] worker
//! pool — so coalesced batches from different tenants interleave on the
//! same workers the way streams share a device. Fairness falls out of
//! the layering:
//!
//! * **isolation** — a hot tenant fills *its own* bounded queue and is
//!   rejected with [`ErrorCode::QueueFull`]; other tenants' queues are
//!   untouched;
//! * **admission control** — a per-tenant in-flight cap
//!   ([`ServerConfig::per_tenant_inflight`]) bounds how many of a
//!   tenant's requests may be queued or signing at once, answered with
//!   [`ErrorCode::TenantBusy`] past the cap;
//! * **fair dequeueing** — the shared executor's submission-aware ready
//!   queue interleaves whole batches from different tenants' batchers,
//!   so no tenant's stage graphs monopolize the workers.
//!
//! ## Graceful drain
//!
//! [`Server::shutdown`] closes the *listener first* (no new
//! connections), then read-shuts every open connection: a handler
//! blocked between frames sees EOF and exits; a handler mid-request
//! finishes signing and writes its response before noticing. Finally
//! every tenant service drains its accepted queue. The invariant —
//! every accepted request is answered exactly once — is the
//! service-layer drain guarantee extended over the wire.

use crate::error::{ErrorCode, WireError};
use crate::keyfile;
use crate::keystore::{KeyStore, ShardedMap, TenantKey};
use crate::metrics::{Metrics, TenantCounters, TenantRow};
use crate::wire::{self, Frame, Op, Request, Response, DEFAULT_MAX_FRAME};

use hero_gpu_sim::device::rtx_4090;
use hero_sign::service::{ServiceConfig, SignService};
use hero_sign::{CacheStats, HeroError, HeroSigner, Signer, VerifyOutcome};
use hero_sphincs::params::Params;
use hero_task_graph::Executor;

use rand::rngs::StdRng;
use rand::SeedableRng;

use std::fmt;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a persistent `accept()` failure (e.g. fd exhaustion) backs
/// off before retrying, instead of busy-spinning the accept thread.
const ACCEPT_RETRY_DELAY: Duration = Duration::from_millis(50);

/// How long [`Server::shutdown`] waits for in-flight responses to be
/// written before force-closing the write halves of straggler
/// connections (a peer that never reads must not hang the drain).
const DRAIN_WRITE_GRACE: Duration = Duration::from_secs(5);

/// Write timeout on metrics connections: the page is one small write, so
/// a stalled scraper fails fast instead of wedging the metrics thread.
const METRICS_WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Builds (or reuses) a signing backend for a parameter set. The server
/// is multi-tenant across parameter sets, so engines are created on
/// demand, one per distinct [`Params`] among the loaded keys.
pub type SignerFactory =
    dyn Fn(Params) -> Result<Arc<dyn Signer + Send + Sync>, HeroError> + Send + Sync;

/// A [`SignerFactory`] building [`HeroSigner`] engines on the modeled
/// RTX 4090, all sharing one persistent worker pool (`workers` threads;
/// `None` = the `HERO_WORKERS`-aware default).
///
/// # Errors
///
/// [`HeroError::InvalidOptions`] for zero workers.
pub fn hero_engine_factory(workers: Option<usize>) -> Result<Arc<SignerFactory>, HeroError> {
    let runtime = match workers {
        Some(w) => Arc::new(
            Executor::new(w)
                .map_err(|_| HeroError::InvalidOptions("workers must be >= 1".to_string()))?,
        ),
        None => Arc::clone(hero_sign::par::shared_executor()),
    };
    Ok(Arc::new(move |params: Params| {
        let engine = HeroSigner::builder(rtx_4090(), params)
            .runtime(Arc::clone(&runtime))
            .build()?;
        Ok(Arc::new(engine) as Arc<dyn Signer + Send + Sync>)
    }))
}

/// Server knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address for the request listener (`127.0.0.1:0` = any free
    /// port; read the bound address from [`Server::local_addr`]).
    pub addr: String,
    /// Bind address for the plaintext metrics listener; `None` disables
    /// it (the [`Op::Stats`] op still serves the same page in-protocol).
    pub metrics_addr: Option<String>,
    /// Largest accepted frame body; larger declared lengths are
    /// discarded and answered with [`ErrorCode::OversizedFrame`].
    pub max_frame: u32,
    /// Per-tenant micro-batcher configuration.
    pub service: ServiceConfig,
    /// Per-tenant admission cap: requests admitted (queued or signing)
    /// at once before [`ErrorCode::TenantBusy`].
    pub per_tenant_inflight: usize,
    /// Latency samples the metrics reservoir keeps.
    pub latency_window: usize,
    /// Where `keygen` persists new tenant key files (`<tenant>.key`);
    /// `None` keeps generated keys in memory only.
    pub keys_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            metrics_addr: None,
            max_frame: DEFAULT_MAX_FRAME,
            service: ServiceConfig::default(),
            per_tenant_inflight: 256,
            latency_window: 4096,
            keys_dir: None,
        }
    }
}

impl ServerConfig {
    /// Checks the configuration for unusable values.
    ///
    /// # Errors
    ///
    /// [`HeroError::InvalidOptions`] naming the offending field.
    pub fn validate(&self) -> Result<(), HeroError> {
        self.service.validate()?;
        if self.per_tenant_inflight == 0 {
            return Err(HeroError::InvalidOptions(
                "per_tenant_inflight must be >= 1".to_string(),
            ));
        }
        if self.max_frame < wire::REQUEST_HEADER_LEN as u32 {
            return Err(HeroError::InvalidOptions(format!(
                "max_frame must be >= {} (one request header)",
                wire::REQUEST_HEADER_LEN
            )));
        }
        Ok(())
    }
}

/// Failures starting a server.
#[derive(Debug)]
pub enum ServerError {
    /// The listener could not bind.
    Bind(io::Error),
    /// The configuration failed validation.
    Config(HeroError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Bind(e) => write!(f, "server bind: {e}"),
            ServerError::Config(e) => write!(f, "server config: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Bind(e) => Some(e),
            ServerError::Config(e) => Some(e),
        }
    }
}

/// One tenant's live runtime state: its service, admission gauge, and
/// counters. Created on the tenant's first keyed request.
struct TenantState {
    service: SignService,
    inflight: AtomicU64,
    counters: TenantCounters,
}

struct ServerShared {
    factory: Arc<SignerFactory>,
    keystore: KeyStore,
    config: ServerConfig,
    /// Engines by parameter set (distinct shapes among tenant keys).
    engines: ShardedMap<Arc<dyn Signer + Send + Sync>>,
    /// Live per-tenant state (service started on first request).
    tenants: ShardedMap<Arc<TenantState>>,
    metrics: Metrics,
    draining: AtomicBool,
    /// Read-halves of open connections, for unblocking handlers at
    /// drain time.
    conns: Mutex<Vec<(u64, TcpStream)>>,
    next_conn_id: AtomicU64,
}

impl ServerShared {
    fn engine_for(&self, params: Params) -> Result<Arc<dyn Signer + Send + Sync>, WireError> {
        // The constructor runs outside the shard lock (engine
        // construction runs the tuning search); a racing duplicate is
        // dropped harmlessly in favor of the first insert.
        self.engines.get_or_try_insert_with(params.name(), || {
            (self.factory)(params).map_err(WireError::from)
        })
    }

    fn tenant_state(&self, tenant: &str, key: &TenantKey) -> Result<Arc<TenantState>, WireError> {
        self.tenants.get_or_try_insert_with(tenant, || {
            let engine = self.engine_for(*key.sk.params())?;
            // Started outside the shard lock too; on a race the loser's
            // service drops (drains empty) and the winner is used.
            let service = SignService::start(engine, key.sk.clone(), self.config.service)
                .map_err(WireError::from)?;
            Ok(Arc::new(TenantState {
                service,
                inflight: AtomicU64::new(0),
                counters: TenantCounters::default(),
            }))
        })
    }

    /// Sums the hypertree-cache counters across every engine (one per
    /// parameter set). Backends without a cache contribute nothing.
    fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for (_, engine) in self.engines.entries() {
            if let Some(stats) = engine.cache_stats() {
                total.merge(&stats);
            }
        }
        total
    }

    fn metrics_page(&self) -> String {
        let rows: Vec<TenantRow> = self
            .tenants
            .entries()
            .into_iter()
            .map(|(tenant, state)| TenantRow {
                tenant,
                requests: state.counters.requests.load(Ordering::Relaxed),
                completed: state.counters.completed.load(Ordering::Relaxed),
                rejected: state.counters.rejected.load(Ordering::Relaxed),
                inflight: state.inflight.load(Ordering::Relaxed),
                queue_depth: state.service.queue_depth() as u64,
                verify_requests: state.counters.verify_requests.load(Ordering::Relaxed),
                verify_invalid: state.counters.verify_invalid.load(Ordering::Relaxed),
                verify_malformed: state.counters.verify_malformed.load(Ordering::Relaxed),
                verify_queue_depth: state.service.verify_queue_depth() as u64,
            })
            .collect();
        let shard_recoveries = self
            .keystore
            .poison_recoveries()
            .saturating_add(self.tenants.poison_recoveries())
            .saturating_add(self.engines.poison_recoveries());
        crate::metrics::render(
            &self.metrics,
            &rows,
            self.draining.load(Ordering::Relaxed),
            shard_recoveries,
            &self.cache_stats(),
        )
    }
}

/// A running server. Dropping it (or calling [`Server::shutdown`])
/// drains gracefully.
pub struct Server {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    accept: Mutex<Option<JoinHandle<()>>>,
    metrics_accept: Mutex<Option<JoinHandle<()>>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("metrics_addr", &self.metrics_addr)
            .field("tenants", &self.shared.keystore.len())
            .finish()
    }
}

impl Server {
    /// Binds the listeners and starts accepting.
    ///
    /// # Errors
    ///
    /// [`ServerError::Config`] on invalid configuration,
    /// [`ServerError::Bind`] when a listener cannot bind.
    pub fn start(
        factory: Arc<SignerFactory>,
        keystore: KeyStore,
        config: ServerConfig,
    ) -> Result<Self, ServerError> {
        config.validate().map_err(ServerError::Config)?;
        let listener = TcpListener::bind(&config.addr).map_err(ServerError::Bind)?;
        let local_addr = listener.local_addr().map_err(ServerError::Bind)?;
        let metrics_listener = match &config.metrics_addr {
            Some(addr) => Some(TcpListener::bind(addr).map_err(ServerError::Bind)?),
            None => None,
        };
        let metrics_addr = match &metrics_listener {
            Some(l) => Some(l.local_addr().map_err(ServerError::Bind)?),
            None => None,
        };

        let shared = Arc::new(ServerShared {
            factory,
            keystore,
            metrics: Metrics::new(config.latency_window),
            config,
            engines: ShardedMap::new(),
            tenants: ShardedMap::new(),
            draining: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            next_conn_id: AtomicU64::new(0),
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        // Warm every loaded tenant's hypertree cache off the accept
        // path: engines build and upper-layer subtrees fill while the
        // listeners come up, so even each tenant's first request signs
        // warm. Best-effort — a failure only means that tenant pays the
        // cold fill its first batch would have paid anyway.
        {
            let shared = Arc::clone(&shared);
            let _ = std::thread::Builder::new()
                .name("hero-server-warm".to_string())
                .spawn(move || {
                    for tenant in shared.keystore.tenants() {
                        let Some(key) = shared.keystore.get(&tenant) else {
                            continue;
                        };
                        if let Ok(engine) = shared.engine_for(*key.sk.params()) {
                            let _ = engine.warm_key(&key.sk);
                        }
                    }
                });
        }

        let accept = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("hero-server-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, &handlers))
                .expect("spawn accept thread")
        };
        let metrics_accept = metrics_listener.map(|listener| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hero-server-metrics".to_string())
                .spawn(move || metrics_loop(&listener, &shared))
                .expect("spawn metrics thread")
        });

        Ok(Self {
            shared,
            local_addr,
            metrics_addr,
            accept: Mutex::new(Some(accept)),
            metrics_accept: Mutex::new(metrics_accept),
            handlers,
        })
    }

    /// The request listener's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The metrics listener's bound address, when enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The tenants currently loaded.
    pub fn tenants(&self) -> Vec<String> {
        self.shared.keystore.tenants()
    }

    /// The current metrics page (the same text the `stats` op and the
    /// metrics listener serve).
    pub fn metrics_page(&self) -> String {
        self.shared.metrics_page()
    }

    /// Graceful drain: stops accepting (listener closed first), unblocks
    /// idle connections, lets in-flight requests finish and answer, then
    /// drains every tenant service. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        if self.shared.draining.swap(true, Ordering::SeqCst) {
            // A concurrent/second shutdown still joins below (the Mutex
            // serializes), so both callers return only when drained.
        }
        // 1. Unblock the accept loops: they check `draining` after every
        //    accept, so a self-connection makes them exit and close the
        //    listeners.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(addr) = self.metrics_addr {
            let _ = TcpStream::connect(addr);
        }
        if let Some(h) = self.accept.lock().expect("accept handle").take() {
            let _ = h.join();
        }
        if let Some(h) = self.metrics_accept.lock().expect("metrics handle").take() {
            let _ = h.join();
        }
        // 2. Read-shutdown every open connection: handlers blocked
        //    between frames see EOF; handlers mid-request answer first
        //    (writes still work), then see EOF.
        for (_, stream) in self.shared.conns.lock().expect("conn registry").iter() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        // 3. Join the handlers: after this, no request is in flight.
        //    In-flight responses get a grace window to be written; then
        //    stragglers (a handler blocked writing to a peer that never
        //    reads) have their write halves closed too, so the blocked
        //    write fails and the handler exits instead of hanging the
        //    drain forever.
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.handlers.lock().expect("handler registry"));
        let deadline = Instant::now() + DRAIN_WRITE_GRACE;
        while handles.iter().any(|h| !h.is_finished()) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        // Finished handlers have already removed themselves from the
        // registry, so only stragglers are force-closed here.
        for (_, stream) in self.shared.conns.lock().expect("conn registry").iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for h in handles {
            let _ = h.join();
        }
        // 4. Drain tenant services (answers anything still queued).
        for (_, state) in self.shared.tenants.entries() {
            state.service.shutdown();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<ServerShared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                // A persistent failure (fd exhaustion, say) must back
                // off, not busy-spin the accept thread at 100% CPU.
                std::thread::sleep(ACCEPT_RETRY_DELAY);
                continue;
            }
        };
        if shared.draining.load(Ordering::SeqCst) {
            // The drain wake-up connection (or a late client): the
            // listener closes now, the connection is dropped unanswered
            // (it carried no accepted request).
            return;
        }
        shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(read_half) = stream.try_clone() {
            shared
                .conns
                .lock()
                .expect("conn registry")
                .push((conn_id, read_half));
        }
        let handle = {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("hero-server-conn-{conn_id}"))
                .spawn(move || {
                    handle_connection(stream, &shared);
                    shared
                        .conns
                        .lock()
                        .expect("conn registry")
                        .retain(|(id, _)| *id != conn_id);
                })
                .expect("spawn connection handler")
        };
        let mut registry = handlers.lock().expect("handler registry");
        // Reap finished handlers so a long-lived server does not
        // accumulate handles.
        let mut i = 0;
        while i < registry.len() {
            if registry[i].is_finished() {
                let _ = registry.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        registry.push(handle);
    }
}

fn metrics_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(ACCEPT_RETRY_DELAY);
                continue;
            }
        };
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        // Plaintext push-on-connect: write the page, close. `curl` and
        // `nc` both render it; no HTTP framing to keep std-only simple.
        // The write is bounded by a timeout so a scraper that connects
        // and never reads cannot wedge this thread (and with it, drain).
        let page = shared.metrics_page();
        let mut stream = stream;
        let _ = stream.set_write_timeout(Some(METRICS_WRITE_TIMEOUT));
        let _ = io::Write::write_all(&mut stream, page.as_bytes());
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<ServerShared>) {
    loop {
        // Chaos point: drop the connection *between* requests — nothing
        // has been accepted yet, so the exactly-once guarantee holds and
        // the client sees a clean transport error.
        if hero_sign::faults::fire(crate::faults::SERVER_CONN_DROP) {
            return;
        }
        let body = match wire::read_frame(&mut stream, shared.config.max_frame) {
            Ok(Frame::Body(body)) => body,
            Ok(Frame::Eof) => return,
            Ok(Frame::Oversized { declared, head }) => {
                // The frame was discarded in sync; answer typed and keep
                // serving this connection. The discarded body's head
                // still carries the request id, so the client can match
                // the rejection to its request.
                shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
                shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                let resp = Response {
                    id: wire::peek_request_id(&head),
                    result: Err(WireError::new(
                        ErrorCode::OversizedFrame,
                        format!(
                            "frame of {declared} bytes exceeds max_frame {}",
                            shared.config.max_frame
                        ),
                    )),
                };
                if wire::write_frame(&mut stream, &wire::encode_response(&resp)).is_err() {
                    return;
                }
                continue;
            }
            // Truncated frame or transport error: nothing complete was
            // accepted, nothing to answer.
            Err(_) => return,
        };
        // Relative deadlines are anchored here, at frame receipt: the
        // client's clock never enters the computation, only its budget.
        let received = Instant::now();
        shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let resp = match wire::decode_request(&body) {
            Ok(req) => {
                let id = req.id;
                let deadline = req
                    .deadline_ms
                    .map(|ms| received + Duration::from_millis(u64::from(ms)));
                let result = dispatch(shared, req, deadline);
                Response { id, result }
            }
            Err(e) => Response {
                id: wire::peek_request_id(&body),
                result: Err(e),
            },
        };
        if let Err(e) = &resp.result {
            shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            if e.code == ErrorCode::DeadlineExceeded {
                shared
                    .metrics
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        let frame = wire::encode_response(&resp);
        // Chaos point (delay specs): a congested peer stalls the write.
        let _ = hero_sign::faults::fire(crate::faults::SERVER_WRITE_SLOW);
        // Chaos point: die mid-write — the client reads a truncated
        // frame and must treat the request's fate as unknown (which is
        // safe to retry here: signing is deterministic).
        if hero_sign::faults::fire(crate::faults::SERVER_WRITE_PARTIAL) {
            let _ = io::Write::write_all(&mut stream, &(frame.len() as u32).to_be_bytes());
            let _ = io::Write::write_all(&mut stream, &frame[..frame.len() / 2]);
            return;
        }
        if wire::write_frame(&mut stream, &frame).is_err() {
            return;
        }
    }
}

/// Executes one decoded request. `deadline` is the request's absolute
/// expiry (wire `deadline_ms` anchored at frame receipt), `None` for
/// v1 frames and v2 frames without the flag.
fn dispatch(
    shared: &Arc<ServerShared>,
    req: Request,
    deadline: Option<Instant>,
) -> Result<Vec<u8>, WireError> {
    // A request read after drain began is answered (exactly once) with
    // the typed drain error rather than being dropped on the floor.
    if shared.draining.load(Ordering::SeqCst) && req.op != Op::Stats {
        return Err(WireError::new(
            ErrorCode::ShuttingDown,
            "server is draining",
        ));
    }
    // A deadline that expired before dispatch (slow read, long frame) is
    // shed up front — the typed rejection is cheaper than any op.
    if req.op != Op::Stats && deadline.is_some_and(|d| d <= Instant::now()) {
        return Err(WireError::new(
            ErrorCode::DeadlineExceeded,
            "request deadline passed before dispatch",
        ));
    }
    match req.op {
        Op::Stats => Ok(shared.metrics_page().into_bytes()),
        Op::Keygen => op_keygen(shared, &req),
        Op::Sign | Op::SignBatch | Op::Verify | Op::VerifyBatch => {
            if req.tenant.is_empty() {
                return Err(WireError::new(
                    ErrorCode::BadRequest,
                    "this op requires a tenant",
                ));
            }
            let key = shared.keystore.get(&req.tenant).ok_or_else(|| {
                WireError::new(
                    ErrorCode::UnknownTenant,
                    format!("no key loaded for tenant '{}'", req.tenant),
                )
            })?;
            let state = shared.tenant_state(&req.tenant, &key)?;
            state.counters.requests.fetch_add(1, Ordering::Relaxed);
            // Admission control: bound this tenant's concurrently
            // admitted requests.
            let admitted = state.inflight.fetch_add(1, Ordering::AcqRel);
            if admitted >= shared.config.per_tenant_inflight as u64 {
                state.inflight.fetch_sub(1, Ordering::AcqRel);
                state.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(WireError::new(
                    ErrorCode::TenantBusy,
                    format!(
                        "tenant '{}' is at its in-flight cap ({})",
                        req.tenant, shared.config.per_tenant_inflight
                    ),
                ));
            }
            let result = match req.op {
                Op::Sign => op_sign(shared, &state, &key, &req.payload, deadline),
                Op::SignBatch => op_sign_batch(shared, &state, &key, &req.payload, deadline),
                Op::Verify => op_verify(shared, &state, &key, &req.payload, deadline),
                Op::VerifyBatch => op_verify_batch(shared, &state, &key, &req.payload, deadline),
                _ => unreachable!("matched above"),
            };
            state.inflight.fetch_sub(1, Ordering::AcqRel);
            match &result {
                Ok(_) => state.counters.completed.fetch_add(1, Ordering::Relaxed),
                Err(_) => state.counters.rejected.fetch_add(1, Ordering::Relaxed),
            };
            result
        }
    }
}

/// Submits one message to the tenant's service, threading the deadline
/// through so the batcher can shed it typed if it expires while queued.
fn submit(
    state: &TenantState,
    msg: Vec<u8>,
    deadline: Option<Instant>,
) -> Result<hero_sign::service::SignTicket, WireError> {
    // Overload is a typed rejection, not a stall: try_submit surfaces a
    // full queue as QueueFull instead of blocking the connection.
    match deadline {
        Some(d) => state.service.try_submit_with_deadline(msg, d),
        None => state.service.try_submit(msg),
    }
    .map_err(WireError::from)
}

fn op_sign(
    shared: &Arc<ServerShared>,
    state: &TenantState,
    key: &TenantKey,
    payload: &[u8],
    deadline: Option<Instant>,
) -> Result<Vec<u8>, WireError> {
    let begin = Instant::now();
    let ticket = submit(state, payload.to_vec(), deadline)?;
    let sig = ticket.wait().map_err(WireError::from)?;
    shared.metrics.record_latency(begin.elapsed());
    Ok(sig.to_bytes(key.sk.params()))
}

fn op_sign_batch(
    shared: &Arc<ServerShared>,
    state: &TenantState,
    key: &TenantKey,
    payload: &[u8],
    deadline: Option<Instant>,
) -> Result<Vec<u8>, WireError> {
    let mut at = 0;
    let count = wire::take_u32(payload, &mut at)? as usize;
    // The declared count is untrusted: every message costs at least its
    // 4-byte length prefix, so a count the remaining payload cannot hold
    // is malformed — rejected before `count` sizes any allocation.
    if count > (payload.len() - at) / 4 {
        return Err(WireError::new(
            ErrorCode::Malformed,
            format!(
                "batch count {count} exceeds what the {}-byte payload can hold",
                payload.len()
            ),
        ));
    }
    // One admission slot covers the whole batch, but queue capacity is
    // still per message: submit all, then wait all.
    let mut msgs = Vec::with_capacity(count);
    for _ in 0..count {
        msgs.push(wire::take_bytes(payload, &mut at)?);
    }
    let begin = Instant::now();
    let mut tickets = Vec::with_capacity(count);
    for msg in msgs {
        tickets.push(submit(state, msg, deadline)?);
    }
    let mut out = Vec::new();
    out.extend_from_slice(&(count as u32).to_be_bytes());
    for ticket in tickets {
        let sig = ticket.wait().map_err(WireError::from)?;
        wire::put_bytes(&mut out, &sig.to_bytes(key.sk.params()));
    }
    let elapsed = begin.elapsed();
    // Record per-message latency so percentiles stay comparable between
    // sign and sign-batch traffic.
    if count > 0 {
        let per_msg = elapsed / count as u32;
        for _ in 0..count {
            shared.metrics.record_latency(per_msg);
        }
    }
    Ok(out)
}

/// Submits one `(msg, sig)` pair to the tenant's verify lane. Like
/// [`submit`], overload is a typed rejection, never a stall.
fn submit_verify(
    state: &TenantState,
    msg: Vec<u8>,
    sig: hero_sphincs::Signature,
    deadline: Option<Instant>,
) -> Result<hero_sign::service::VerifyTicket, WireError> {
    match deadline {
        Some(d) => state.service.try_submit_verify_with_deadline(msg, sig, d),
        None => state.service.try_submit_verify(msg, sig),
    }
    .map_err(WireError::from)
}

fn op_verify(
    shared: &Arc<ServerShared>,
    state: &TenantState,
    key: &TenantKey,
    payload: &[u8],
    deadline: Option<Instant>,
) -> Result<Vec<u8>, WireError> {
    let mut at = 0;
    let msg = wire::take_bytes(payload, &mut at)?;
    let sig_bytes = wire::take_bytes(payload, &mut at)?;
    let params = key.vk.params();
    state
        .counters
        .verify_requests
        .fetch_add(1, Ordering::Relaxed);
    let sig = match hero_sphincs::Signature::from_bytes(params, &sig_bytes) {
        Ok(sig) => sig,
        Err(e) => {
            state
                .counters
                .verify_malformed
                .fetch_add(1, Ordering::Relaxed);
            return Err(WireError::from(HeroError::from(e)));
        }
    };
    let begin = Instant::now();
    let ticket = submit_verify(state, msg, sig, deadline)?;
    let outcome = ticket.wait().map_err(WireError::from)?;
    shared.metrics.record_verify_latency(begin.elapsed());
    match outcome {
        VerifyOutcome::Valid => Ok(Vec::new()),
        VerifyOutcome::Invalid => {
            state
                .counters
                .verify_invalid
                .fetch_add(1, Ordering::Relaxed);
            Err(WireError::new(
                ErrorCode::VerificationFailed,
                "signature does not verify",
            ))
        }
        VerifyOutcome::Malformed(what) => {
            state
                .counters
                .verify_malformed
                .fetch_add(1, Ordering::Relaxed);
            Err(WireError::new(
                ErrorCode::Sphincs,
                format!("malformed signature: {what}"),
            ))
        }
    }
}

/// On-wire verdict byte: the signature verified.
const VERDICT_VALID: u8 = 1;
/// On-wire verdict byte: structurally fine, cryptographically invalid.
const VERDICT_INVALID: u8 = 0;
/// On-wire verdict byte: structurally malformed (wrong lengths/shape).
const VERDICT_MALFORMED: u8 = 2;

fn op_verify_batch(
    shared: &Arc<ServerShared>,
    state: &TenantState,
    key: &TenantKey,
    payload: &[u8],
    deadline: Option<Instant>,
) -> Result<Vec<u8>, WireError> {
    let mut at = 0;
    let count = wire::take_u32(payload, &mut at)? as usize;
    // The declared count is untrusted: every item costs at least its two
    // 4-byte length prefixes, so a count the remaining payload cannot
    // hold is malformed — rejected before `count` sizes any allocation.
    if count > (payload.len() - at) / 8 {
        return Err(WireError::new(
            ErrorCode::Malformed,
            format!(
                "verify-batch count {count} exceeds what the {}-byte payload can hold",
                payload.len()
            ),
        ));
    }
    let mut items = Vec::with_capacity(count);
    for _ in 0..count {
        let msg = wire::take_bytes(payload, &mut at)?;
        let sig_bytes = wire::take_bytes(payload, &mut at)?;
        items.push((msg, sig_bytes));
    }
    state
        .counters
        .verify_requests
        .fetch_add(count as u64, Ordering::Relaxed);
    // Submit everything decodable before waiting on anything, so the
    // whole batch coalesces on the verify lane; undecodable bytes get a
    // per-item malformed verdict without costing the lane a slot.
    let begin = Instant::now();
    let params = key.vk.params();
    let mut verdicts = vec![VERDICT_INVALID; count];
    let mut tickets: Vec<Option<hero_sign::service::VerifyTicket>> = Vec::with_capacity(count);
    for (i, (msg, sig_bytes)) in items.into_iter().enumerate() {
        match hero_sphincs::Signature::from_bytes(params, &sig_bytes) {
            Ok(sig) => tickets.push(Some(submit_verify(state, msg, sig, deadline)?)),
            Err(_) => {
                verdicts[i] = VERDICT_MALFORMED;
                tickets.push(None);
            }
        }
    }
    for (i, ticket) in tickets.into_iter().enumerate() {
        let Some(ticket) = ticket else { continue };
        verdicts[i] = match ticket.wait().map_err(WireError::from)? {
            VerifyOutcome::Valid => VERDICT_VALID,
            VerifyOutcome::Invalid => VERDICT_INVALID,
            VerifyOutcome::Malformed(_) => VERDICT_MALFORMED,
        };
    }
    let elapsed = begin.elapsed();
    // Per-item latency so percentiles stay comparable between verify
    // and verify-batch traffic.
    if count > 0 {
        let per_item = elapsed / count as u32;
        for _ in 0..count {
            shared.metrics.record_verify_latency(per_item);
        }
    }
    for &v in &verdicts {
        match v {
            VERDICT_INVALID => state
                .counters
                .verify_invalid
                .fetch_add(1, Ordering::Relaxed),
            VERDICT_MALFORMED => state
                .counters
                .verify_malformed
                .fetch_add(1, Ordering::Relaxed),
            _ => 0,
        };
    }
    let mut out = Vec::new();
    out.extend_from_slice(&(count as u32).to_be_bytes());
    out.extend_from_slice(&verdicts);
    Ok(out)
}

fn op_keygen(shared: &Arc<ServerShared>, req: &Request) -> Result<Vec<u8>, WireError> {
    let tenant = &req.tenant;
    if !valid_tenant_name(tenant) {
        return Err(WireError::new(
            ErrorCode::BadRequest,
            "tenant names are 1-128 chars of [A-Za-z0-9._-], not starting with '.'",
        ));
    }
    let payload = &req.payload;
    let mut at = 0;
    let params_label = wire::take_str(payload, &mut at)?;
    let alg_label = wire::take_str(payload, &mut at)?;
    let params = Params::from_label(&params_label).ok_or_else(|| {
        WireError::new(
            ErrorCode::BadRequest,
            format!("unknown parameter set '{params_label}'"),
        )
    })?;
    let alg = if alg_label.is_empty() {
        params.preferred_alg()
    } else {
        hero_sphincs::HashAlg::from_label(&alg_label).ok_or_else(|| {
            WireError::new(
                ErrorCode::BadRequest,
                format!("unknown hash algorithm '{alg_label}'"),
            )
        })?
    };
    let seed = match payload.get(at) {
        Some(1) => {
            at += 1;
            let end = at
                .checked_add(8)
                .filter(|&e| e <= payload.len())
                .ok_or_else(|| WireError::new(ErrorCode::Malformed, "truncated keygen seed"))?;
            Some(u64::from_be_bytes(
                payload[at..end].try_into().expect("sized"),
            ))
        }
        Some(0) => None,
        _ => {
            return Err(WireError::new(
                ErrorCode::Malformed,
                "keygen payload missing seed flag",
            ))
        }
    };
    let mut rng = match seed {
        Some(s) => StdRng::seed_from_u64(s),
        None => StdRng::from_entropy(),
    };
    let (sk, vk) = hero_sphincs::keygen_with_alg(params, alg, &mut rng)
        .map_err(|e| WireError::from(HeroError::from(e)))?;

    // Persist before publishing: a key that cannot be stored durably is
    // not handed out. The write is crash-safe *and* exclusive: the key
    // material is staged in a temp file, fsynced, and hard-linked into
    // place — the final path either holds a complete key file or does
    // not exist, and two concurrent keygens for the same tenant cannot
    // both publish (the link refuses to clobber, the loser gets
    // TenantExists). The key published in memory is always the one on
    // disk.
    if let Some(dir) = &shared.config.keys_dir {
        let text = keyfile::encode(&params, alg, sk.sk_seed(), sk.sk_prf(), sk.pk_seed());
        let path = dir.join(format!("{tenant}.key"));
        if hero_sign::faults::fire(crate::faults::KEYSTORE_IO) {
            return Err(WireError::new(
                ErrorCode::Keyfile,
                format!("{}: injected keystore I/O fault", path.display()),
            ));
        }
        match keyfile::write_new_atomic(&path, &text) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                return Err(WireError::new(
                    ErrorCode::TenantExists,
                    format!("key file for tenant '{tenant}' already exists"),
                ));
            }
            Err(e) => {
                return Err(WireError::new(
                    ErrorCode::Keyfile,
                    format!("{}: {e}", path.display()),
                ));
            }
        }
        // The exclusive create won the disk race; if the tenant is
        // nonetheless already in memory (loaded from another directory),
        // withdraw the orphan file rather than leave disk diverging.
        if let Err(e) = shared.keystore.insert(tenant, sk, vk.clone()) {
            let _ = std::fs::remove_file(&path);
            return Err(e);
        }
    } else {
        shared.keystore.insert(tenant, sk, vk.clone())?;
    }

    let mut out = Vec::new();
    wire::put_str(&mut out, params.name());
    wire::put_str(&mut out, alg.label());
    wire::put_bytes(&mut out, &vk.to_bytes());
    Ok(out)
}

/// Tenant names double as key file stems, so they must be path-safe.
fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_edge_cases_are_typed() {
        for bad in [
            ServerConfig {
                per_tenant_inflight: 0,
                ..ServerConfig::default()
            },
            ServerConfig {
                max_frame: 4,
                ..ServerConfig::default()
            },
            ServerConfig {
                service: ServiceConfig {
                    max_batch: 0,
                    ..ServiceConfig::default()
                },
                ..ServerConfig::default()
            },
        ] {
            assert!(
                matches!(bad.validate(), Err(HeroError::InvalidOptions(_))),
                "{bad:?}"
            );
        }
        ServerConfig::default().validate().unwrap();
    }

    #[test]
    fn tenant_names_are_path_safe() {
        for good in ["alice", "validator-7", "a.b_c", "X"] {
            assert!(valid_tenant_name(good), "{good}");
        }
        for bad in ["", ".hidden", "a/b", "a\\b", "név", &"x".repeat(129)] {
            assert!(!valid_tenant_name(bad), "{bad}");
        }
    }
}
