//! Wire protocol v1/v2: versioned, length-prefixed binary frames over
//! TCP.
//!
//! Every frame is a 4-byte big-endian length followed by that many body
//! bytes. All multi-byte integers are big-endian.
//!
//! ```text
//!            ┌────────────┬─────────────────────────────────────────┐
//!   frame    │ len: u32   │ body (len bytes)                        │
//!            └────────────┴─────────────────────────────────────────┘
//!
//!   request  ┌────────┬─────────┬────────┬──────────┬────────┬──────┐
//!   body v1  │ ver:u8 │ id:u64  │ op:u8  │ tlen:u16 │ tenant │ load │
//!            └────────┴─────────┴────────┴──────────┴────────┴──────┘
//!
//!   request  ┌────────┬────────┬───────┬──────────┬────────────────┬──────────┬────────┬──────┐
//!   body v2  │ ver:u8 │ id:u64 │ op:u8 │ flags:u8 │ [deadline:u32] │ tlen:u16 │ tenant │ load │
//!            └────────┴────────┴───────┴──────────┴────────────────┴──────────┴────────┴──────┘
//!
//!   response ┌────────┬─────────┬───────────┬────────────────────────┐
//!   body     │ ver:u8 │ id:u64  │ code:u16  │ payload | error msg    │
//!            └────────┴─────────┴───────────┴────────────────────────┘
//! ```
//!
//! `code = 0` means success and the rest of the body is the op's
//! payload; any other code is a stable [`ErrorCode`] and the rest is a
//! UTF-8 message. The request `id` is chosen by the client and echoed
//! verbatim, so a client can match responses even if a future server
//! pipelines them. One op per frame; the reference server answers every
//! accepted frame exactly once, in order, per connection.
//!
//! ## Version negotiation
//!
//! v2 adds a `flags` byte after the opcode; flag bit 0
//! ([`FLAG_DEADLINE`]) announces a `deadline:u32` — the request's
//! remaining time budget in **milliseconds, relative to receipt**
//! (absolute instants don't survive a network hop between unsynchronized
//! clocks). A server past the budget answers
//! [`ErrorCode::DeadlineExceeded`] instead of signing. Negotiation is
//! per-request and implicit: [`encode_request`] emits a byte-identical
//! v1 body whenever no deadline is set, so old servers never see a v2
//! frame from a client that doesn't use deadlines, and new servers
//! accept both versions. Responses are always v1.
//!
//! Per-op payloads (all lengths `u32` unless noted):
//!
//! * [`Op::Sign`] — request: the raw message bytes. Response: the
//!   signature bytes ([`hero_sphincs::Signature::to_bytes`]).
//! * [`Op::SignBatch`] — request: `count:u32`, then `count` ×
//!   (`len:u32`, bytes). Response: same framing with signatures.
//! * [`Op::Verify`] — request: `mlen:u32`, message, `slen:u32`,
//!   signature. Response: empty payload (valid) or
//!   [`ErrorCode::VerificationFailed`].
//! * [`Op::VerifyBatch`] — request: `count:u32`, then `count` ×
//!   (`mlen:u32`, message, `slen:u32`, signature). Response:
//!   `count:u32`, then one verdict byte per item: `1` valid, `0`
//!   cryptographically invalid, `2` structurally malformed. A mixed
//!   batch is a *success* response naming the failing indices; only
//!   tenancy/admission/framing failures are error responses.
//! * [`Op::Keygen`] — request: `plen:u16`, params label, `alen:u16`,
//!   hash-alg label (empty = the shape's preferred primitive),
//!   `has_seed:u8`, then `seed:u64` when `has_seed = 1`. Response:
//!   `plen:u16`, canonical params name, `alen:u16`, alg label,
//!   `pklen:u32`, public key bytes.
//! * [`Op::Stats`] — request: empty payload (tenant may be empty).
//!   Response: the plaintext metrics page.

use crate::error::{ErrorCode, WireError};
use std::io::{self, Read, Write};

/// The baseline protocol version (requests without a deadline, and all
/// responses).
pub const WIRE_VERSION: u8 = 1;

/// The extended request version carrying a flags byte (and, with
/// [`FLAG_DEADLINE`], a relative deadline).
pub const WIRE_VERSION_V2: u8 = 2;

/// v2 flag bit 0: a `deadline:u32` (milliseconds, relative to receipt)
/// follows the flags byte.
pub const FLAG_DEADLINE: u8 = 0b0000_0001;

/// Fixed bytes of a v1 request body before the tenant: version (1) +
/// request id (8) + opcode (1) + tenant length (2).
pub const REQUEST_HEADER_LEN: usize = 12;

/// Default cap on a single frame's declared body length (4 MiB): a
/// 64-message batch of full-set signatures fits with headroom, while a
/// hostile length prefix cannot balloon server memory.
pub const DEFAULT_MAX_FRAME: u32 = 4 * 1024 * 1024;

/// The operations of protocol v1. Discriminants are the on-wire opcode
/// byte and are stable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Op {
    /// Generate (and store) a key for a tenant.
    Keygen = 1,
    /// Sign one message under the tenant's key.
    Sign = 2,
    /// Sign a batch of messages under the tenant's key.
    SignBatch = 3,
    /// Verify one signature under the tenant's key.
    Verify = 4,
    /// Fetch the plaintext metrics page.
    Stats = 5,
    /// Verify a batch of signatures under the tenant's key, answering
    /// one verdict byte per item.
    VerifyBatch = 6,
}

impl Op {
    /// Decodes an opcode byte.
    pub const fn from_u8(op: u8) -> Option<Self> {
        Some(match op {
            1 => Op::Keygen,
            2 => Op::Sign,
            3 => Op::SignBatch,
            4 => Op::Verify,
            5 => Op::Stats,
            6 => Op::VerifyBatch,
            _ => return None,
        })
    }
}

/// A decoded request frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen id, echoed in the response.
    pub id: u64,
    /// The tenant the op concerns (may be empty for [`Op::Stats`]).
    pub tenant: String,
    /// The operation.
    pub op: Op,
    /// Op-specific payload (see the module docs).
    pub payload: Vec<u8>,
    /// Remaining time budget in milliseconds, relative to receipt
    /// (`None` = no deadline). Carried on the wire only by v2 frames;
    /// the receiver anchors it to its own clock the moment the frame is
    /// read.
    pub deadline_ms: Option<u32>,
}

/// A decoded response frame: the echoed id and either the op's payload
/// or a typed error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// The request id this answers.
    pub id: u64,
    /// Success payload or typed error.
    pub result: Result<Vec<u8>, WireError>,
}

/// Encodes a request into one frame: a byte-identical v1 body when the
/// request carries no deadline (so servers that only speak v1 are
/// unaffected), a v2 body otherwise.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let tenant = req.tenant.as_bytes();
    assert!(tenant.len() <= u16::MAX as usize, "tenant name too long");
    let extra = match req.deadline_ms {
        Some(_) => 5, // flags byte + deadline u32
        None => 0,
    };
    let body_len = REQUEST_HEADER_LEN + extra + tenant.len() + req.payload.len();
    let mut out = Vec::with_capacity(4 + body_len);
    out.extend_from_slice(&(body_len as u32).to_be_bytes());
    out.push(match req.deadline_ms {
        Some(_) => WIRE_VERSION_V2,
        None => WIRE_VERSION,
    });
    out.extend_from_slice(&req.id.to_be_bytes());
    out.push(req.op as u8);
    if let Some(ms) = req.deadline_ms {
        out.push(FLAG_DEADLINE);
        out.extend_from_slice(&ms.to_be_bytes());
    }
    out.extend_from_slice(&(tenant.len() as u16).to_be_bytes());
    out.extend_from_slice(tenant);
    out.extend_from_slice(&req.payload);
    out
}

/// Encodes a response into one frame.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let (code, payload): (u16, &[u8]) = match &resp.result {
        Ok(payload) => (0, payload),
        Err(e) => (e.code.as_u16(), e.message.as_bytes()),
    };
    let body_len = 1 + 8 + 2 + payload.len();
    let mut out = Vec::with_capacity(4 + body_len);
    out.extend_from_slice(&(body_len as u32).to_be_bytes());
    out.push(WIRE_VERSION);
    out.extend_from_slice(&resp.id.to_be_bytes());
    out.extend_from_slice(&code.to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// What [`read_frame`] produced: a body, a clean EOF between frames, or
/// an oversized frame whose body was discarded (the connection remains
/// usable; answer with [`ErrorCode::OversizedFrame`]).
#[derive(Debug)]
pub enum Frame {
    /// A complete frame body.
    Body(Vec<u8>),
    /// The peer closed the connection between frames.
    Eof,
    /// The declared length exceeded `max_frame`; `declared` bytes were
    /// read and discarded.
    Oversized {
        /// The length the peer declared.
        declared: u32,
        /// The first bytes of the discarded body (up to one request
        /// header's worth), so the rejection can still echo the request
        /// id via [`peek_request_id`].
        head: Vec<u8>,
    },
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// Propagates transport errors; a peer that closes mid-frame surfaces as
/// [`io::ErrorKind::UnexpectedEof`] (a *truncated* frame — distinct from
/// the clean [`Frame::Eof`] between frames).
pub fn read_frame(stream: &mut impl Read, max_frame: u32) -> io::Result<Frame> {
    let mut len_buf = [0u8; 4];
    // A clean close between frames yields 0 bytes on the first read.
    match stream.read(&mut len_buf) {
        Ok(0) => return Ok(Frame::Eof),
        Ok(n) => stream.read_exact(&mut len_buf[n..])?,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
            stream.read_exact(&mut len_buf)?;
        }
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > max_frame {
        // Stream the body into a scratch buffer so a hostile length
        // cannot allocate; the frame is answered with a typed error.
        // Keep the first header's worth of bytes so the rejection can
        // echo the request id the peer sent.
        let mut head = Vec::with_capacity(9);
        let mut remaining = len as u64;
        let mut scratch = [0u8; 16 * 1024];
        while remaining > 0 {
            let take = scratch.len().min(remaining as usize);
            stream.read_exact(&mut scratch[..take])?;
            if head.len() < 9 {
                let need = (9 - head.len()).min(take);
                head.extend_from_slice(&scratch[..need]);
            }
            remaining -= take as u64;
        }
        return Ok(Frame::Oversized {
            declared: len,
            head,
        });
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body)?;
    Ok(Frame::Body(body))
}

/// Writes one pre-encoded frame.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_frame(stream: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    stream.write_all(frame)?;
    stream.flush()
}

/// Best-effort request id from a possibly-malformed body, so protocol
/// errors can still echo the id the client sent (0 when unreadable).
pub fn peek_request_id(body: &[u8]) -> u64 {
    if body.len() >= 9 {
        u64::from_be_bytes(body[1..9].try_into().expect("9 bytes checked"))
    } else {
        0
    }
}

/// Decodes a request body — v1 and v2 are both accepted (see the module
/// docs for negotiation).
///
/// # Errors
///
/// A typed [`WireError`] (`UnsupportedVersion`, `UnknownOpcode`, or
/// `Malformed`) describing the first structural problem found.
pub fn decode_request(body: &[u8]) -> Result<Request, WireError> {
    if body.len() < REQUEST_HEADER_LEN {
        return Err(WireError::new(
            ErrorCode::Malformed,
            format!(
                "request body is {} bytes, header alone is {REQUEST_HEADER_LEN}",
                body.len()
            ),
        ));
    }
    let version = body[0];
    if version != WIRE_VERSION && version != WIRE_VERSION_V2 {
        return Err(WireError::new(
            ErrorCode::UnsupportedVersion,
            format!(
                "peer speaks wire version {version}, this server speaks \
                 {WIRE_VERSION} and {WIRE_VERSION_V2}"
            ),
        ));
    }
    let id = u64::from_be_bytes(body[1..9].try_into().expect("sized"));
    let op = Op::from_u8(body[9]).ok_or_else(|| {
        WireError::new(
            ErrorCode::UnknownOpcode,
            format!("unknown opcode {}", body[9]),
        )
    })?;
    let mut at = 10;
    let mut deadline_ms = None;
    if version == WIRE_VERSION_V2 {
        let flags = body[at];
        at += 1;
        if flags & !FLAG_DEADLINE != 0 {
            return Err(WireError::new(
                ErrorCode::Malformed,
                format!("unknown v2 flags 0x{flags:02x}"),
            ));
        }
        if flags & FLAG_DEADLINE != 0 {
            deadline_ms = Some(take_u32(body, &mut at)?);
        }
    }
    let tlen_end = at
        .checked_add(2)
        .filter(|&e| e <= body.len())
        .ok_or_else(|| WireError::new(ErrorCode::Malformed, "truncated tenant length"))?;
    let tenant_len = u16::from_be_bytes(body[at..tlen_end].try_into().expect("sized")) as usize;
    let rest = &body[tlen_end..];
    if rest.len() < tenant_len {
        return Err(WireError::new(
            ErrorCode::Malformed,
            format!(
                "tenant length {tenant_len} exceeds remaining {} bytes",
                rest.len()
            ),
        ));
    }
    let tenant = std::str::from_utf8(&rest[..tenant_len])
        .map_err(|_| WireError::new(ErrorCode::Malformed, "tenant is not UTF-8"))?
        .to_string();
    Ok(Request {
        id,
        tenant,
        op,
        payload: rest[tenant_len..].to_vec(),
        deadline_ms,
    })
}

/// Decodes a response body.
///
/// # Errors
///
/// [`WireError`] with [`ErrorCode::Malformed`] /
/// [`ErrorCode::UnsupportedVersion`] on structural problems (the typed
/// error *inside* a well-formed response comes back as `Ok(Response)`
/// with `result: Err(..)`).
pub fn decode_response(body: &[u8]) -> Result<Response, WireError> {
    if body.len() < 11 {
        return Err(WireError::new(
            ErrorCode::Malformed,
            format!("response body is {} bytes, header alone is 11", body.len()),
        ));
    }
    let version = body[0];
    if version != WIRE_VERSION {
        return Err(WireError::new(
            ErrorCode::UnsupportedVersion,
            format!("peer speaks wire version {version}, this client speaks {WIRE_VERSION}"),
        ));
    }
    let id = u64::from_be_bytes(body[1..9].try_into().expect("sized"));
    let code = u16::from_be_bytes(body[9..11].try_into().expect("sized"));
    let payload = body[11..].to_vec();
    let result = if code == 0 {
        Ok(payload)
    } else {
        Err(WireError::from_wire(
            code,
            String::from_utf8_lossy(&payload).into_owned(),
        ))
    };
    Ok(Response { id, result })
}

// ---- payload helpers shared by server and client ------------------------

/// Appends a `u32` length-prefixed byte run.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(bytes);
}

/// Reads a `u32` length-prefixed byte run, advancing `at`.
///
/// # Errors
///
/// [`ErrorCode::Malformed`] when the buffer is shorter than declared.
pub fn take_bytes(buf: &[u8], at: &mut usize) -> Result<Vec<u8>, WireError> {
    let len = take_u32(buf, at)? as usize;
    let start = *at;
    let end = start
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| {
            WireError::new(
                ErrorCode::Malformed,
                format!("field of {len} bytes exceeds buffer"),
            )
        })?;
    *at = end;
    Ok(buf[start..end].to_vec())
}

/// Reads a big-endian `u32`, advancing `at`.
///
/// # Errors
///
/// [`ErrorCode::Malformed`] when fewer than 4 bytes remain.
pub fn take_u32(buf: &[u8], at: &mut usize) -> Result<u32, WireError> {
    let end = at
        .checked_add(4)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| WireError::new(ErrorCode::Malformed, "truncated u32 field"))?;
    let v = u32::from_be_bytes(buf[*at..end].try_into().expect("sized"));
    *at = end;
    Ok(v)
}

/// Appends a `u16` length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    assert!(bytes.len() <= u16::MAX as usize, "string field too long");
    out.extend_from_slice(&(bytes.len() as u16).to_be_bytes());
    out.extend_from_slice(bytes);
}

/// Reads a `u16` length-prefixed UTF-8 string, advancing `at`.
///
/// # Errors
///
/// [`ErrorCode::Malformed`] on truncation or invalid UTF-8.
pub fn take_str(buf: &[u8], at: &mut usize) -> Result<String, WireError> {
    let lend = at
        .checked_add(2)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| WireError::new(ErrorCode::Malformed, "truncated string length"))?;
    let len = u16::from_be_bytes(buf[*at..lend].try_into().expect("sized")) as usize;
    let end = lend
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| WireError::new(ErrorCode::Malformed, "truncated string field"))?;
    let s = std::str::from_utf8(&buf[lend..end])
        .map_err(|_| WireError::new(ErrorCode::Malformed, "string field is not UTF-8"))?
        .to_string();
    *at = end;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_frames_round_trip() {
        let req = Request {
            id: 0xDEAD_BEEF_0042,
            tenant: "validator-7".to_string(),
            op: Op::Sign,
            payload: b"message bytes".to_vec(),
            deadline_ms: None,
        };
        let frame = encode_request(&req);
        let mut cursor = std::io::Cursor::new(frame);
        match read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap() {
            Frame::Body(body) => assert_eq!(decode_request(&body).unwrap(), req),
            other => panic!("expected body, got {other:?}"),
        }
    }

    #[test]
    fn deadline_requests_use_v2_and_round_trip() {
        let req = Request {
            id: 11,
            tenant: "t".to_string(),
            op: Op::Sign,
            payload: b"msg".to_vec(),
            deadline_ms: Some(1500),
        };
        let frame = encode_request(&req);
        assert_eq!(frame[4], WIRE_VERSION_V2, "deadline requests are v2");
        let mut cursor = std::io::Cursor::new(frame);
        match read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap() {
            Frame::Body(body) => assert_eq!(decode_request(&body).unwrap(), req),
            other => panic!("expected body, got {other:?}"),
        }
    }

    #[test]
    fn deadline_free_requests_stay_byte_identical_v1() {
        // The negotiation contract: a client that sets no deadline emits
        // exactly the v1 bytes it always did, so old servers are
        // unaffected by this crate's v2 support.
        let req = Request {
            id: 3,
            tenant: "legacy".to_string(),
            op: Op::Verify,
            payload: vec![1, 2, 3],
            deadline_ms: None,
        };
        let frame = encode_request(&req);
        assert_eq!(frame[4], WIRE_VERSION);
        // Hand-build the v1 body and compare bytes.
        let mut v1 = Vec::new();
        v1.push(WIRE_VERSION);
        v1.extend_from_slice(&3u64.to_be_bytes());
        v1.push(Op::Verify as u8);
        v1.extend_from_slice(&6u16.to_be_bytes());
        v1.extend_from_slice(b"legacy");
        v1.extend_from_slice(&[1, 2, 3]);
        assert_eq!(&frame[4..], v1.as_slice());
    }

    #[test]
    fn v2_rejects_unknown_flags_and_truncation() {
        let mut body = vec![WIRE_VERSION_V2];
        body.extend_from_slice(&9u64.to_be_bytes());
        body.push(Op::Sign as u8);
        body.push(0b1000_0000); // unknown flag bit
        body.extend_from_slice(&0u16.to_be_bytes());
        assert_eq!(
            decode_request(&body).unwrap_err().code,
            ErrorCode::Malformed
        );
        // Deadline flag set but the u32 is missing.
        let mut body = vec![WIRE_VERSION_V2];
        body.extend_from_slice(&9u64.to_be_bytes());
        body.push(Op::Sign as u8);
        body.push(FLAG_DEADLINE);
        body.extend_from_slice(&[0, 1]); // 2 bytes where 4 + tlen are due
        assert_eq!(
            decode_request(&body).unwrap_err().code,
            ErrorCode::Malformed
        );
    }

    #[test]
    fn response_frames_round_trip_both_arms() {
        for result in [
            Ok(b"signature".to_vec()),
            Err(WireError::new(ErrorCode::QueueFull, "try later")),
        ] {
            let resp = Response { id: 7, result };
            let frame = encode_response(&resp);
            let mut cursor = std::io::Cursor::new(frame);
            match read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap() {
                Frame::Body(body) => assert_eq!(decode_response(&body).unwrap(), resp),
                other => panic!("expected body, got {other:?}"),
            }
        }
    }

    #[test]
    fn all_opcodes_round_trip() {
        for op in [
            Op::Keygen,
            Op::Sign,
            Op::SignBatch,
            Op::Verify,
            Op::Stats,
            Op::VerifyBatch,
        ] {
            assert_eq!(Op::from_u8(op as u8), Some(op));
        }
        assert_eq!(Op::from_u8(0), None);
        assert_eq!(Op::from_u8(7), None);
        assert_eq!(Op::from_u8(99), None);
    }

    #[test]
    fn clean_eof_vs_truncated_frame() {
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(
            read_frame(&mut empty, DEFAULT_MAX_FRAME).unwrap(),
            Frame::Eof
        ));
        // Length prefix promises 100 bytes, stream has 3.
        let mut short = std::io::Cursor::new({
            let mut v = 100u32.to_be_bytes().to_vec();
            v.extend_from_slice(&[1, 2, 3]);
            v
        });
        let err = read_frame(&mut short, DEFAULT_MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_frames_are_discarded_not_fatal() {
        let declared = 64 * 1024u32;
        let mut data = declared.to_be_bytes().to_vec();
        data.extend(std::iter::repeat_n(0xAB, declared as usize));
        // A well-formed follow-up frame after the oversized one.
        data.extend(encode_request(&Request {
            id: 9,
            tenant: String::new(),
            op: Op::Stats,
            payload: Vec::new(),
            deadline_ms: None,
        }));
        let mut cursor = std::io::Cursor::new(data);
        match read_frame(&mut cursor, 1024).unwrap() {
            Frame::Oversized { declared: d, head } => {
                assert_eq!(d, declared);
                // The head carries the first request-header bytes, so
                // the rejection can still echo the peer's request id.
                assert_eq!(head, vec![0xAB; 9]);
            }
            other => panic!("expected oversized, got {other:?}"),
        }
        // The connection is still in sync: the next frame parses.
        match read_frame(&mut cursor, 1024).unwrap() {
            Frame::Body(body) => assert_eq!(decode_request(&body).unwrap().id, 9),
            other => panic!("expected body, got {other:?}"),
        }
    }

    #[test]
    fn malformed_bodies_are_typed() {
        // Too short for a header.
        let err = decode_request(&[1, 2, 3]).unwrap_err();
        assert_eq!(err.code, ErrorCode::Malformed);
        // Wrong version.
        let mut req = encode_request(&Request {
            id: 1,
            tenant: "t".into(),
            op: Op::Sign,
            payload: vec![],
            deadline_ms: None,
        });
        req[4] = 99; // version byte lives right after the length prefix
        let err = decode_request(&req[4..]).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnsupportedVersion);
        // Unknown opcode.
        let mut req = encode_request(&Request {
            id: 1,
            tenant: "t".into(),
            op: Op::Sign,
            payload: vec![],
            deadline_ms: None,
        });
        req[13] = 77; // opcode byte: 4 (len) + 1 (ver) + 8 (id)
        let err = decode_request(&req[4..]).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownOpcode);
        // Tenant length overruns the body.
        let mut body = vec![WIRE_VERSION];
        body.extend_from_slice(&5u64.to_be_bytes());
        body.push(Op::Sign as u8);
        body.extend_from_slice(&500u16.to_be_bytes());
        body.extend_from_slice(b"ab");
        let err = decode_request(&body).unwrap_err();
        assert_eq!(err.code, ErrorCode::Malformed);
        // The id is still recoverable for the error response.
        assert_eq!(peek_request_id(&body), 5);
        assert_eq!(peek_request_id(&[1, 2]), 0);
    }

    #[test]
    fn payload_helpers_round_trip_and_reject_overruns() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"alpha");
        put_str(&mut buf, "beta");
        put_bytes(&mut buf, b"");
        let mut at = 0;
        assert_eq!(take_bytes(&buf, &mut at).unwrap(), b"alpha");
        assert_eq!(take_str(&buf, &mut at).unwrap(), "beta");
        assert_eq!(take_bytes(&buf, &mut at).unwrap(), b"");
        assert_eq!(at, buf.len());
        // Declared length past the end is Malformed, not a panic.
        let mut bad = Vec::new();
        bad.extend_from_slice(&100u32.to_be_bytes());
        bad.extend_from_slice(b"xy");
        let mut at = 0;
        assert_eq!(
            take_bytes(&bad, &mut at).unwrap_err().code,
            ErrorCode::Malformed
        );
    }
}
