//! A blocking client for the hero-server wire protocol.
//!
//! One [`Client`] wraps one TCP connection and issues requests
//! synchronously (write frame, read frame). The server pipelines across
//! *connections*, not within one, so closed-loop load generators open
//! one client per concurrent stream — exactly what `bench_server` and
//! the CLI `remote-sign` command do.
//!
//! # Timeouts, reconnect, and retry
//!
//! Sockets carry a read/write timeout ([`DEFAULT_IO_TIMEOUT`], 5 s by
//! default) so a stalled or half-dead server surfaces as a typed
//! [`ClientError::Io`] instead of hanging the caller forever; tune it
//! with [`Client::set_io_timeout`].
//!
//! Retry is **opt-in** via [`Client::set_retry`]. When a policy is set,
//! transport failures and backpressure rejections ([`ErrorCode`]s where
//! [`is_backpressure`] holds) are retried with jittered exponential
//! backoff, reconnecting first on transport errors. This is safe for
//! this protocol specifically: SPHINCS+ signing is deterministic, so a
//! request that was secretly served before the connection died produces
//! byte-identical output when replayed. Two operations are *never*
//! retried regardless of policy:
//!
//! - **Keygen** — replaying it after an ambiguous failure would land on
//!   [`ErrorCode::TenantExists`] and mask the real outcome.
//! - Anything rejected with [`ErrorCode::DeadlineExceeded`] — the
//!   budget is already spent; retrying without extending it only adds
//!   load.
//!
//! [`ErrorCode`]: crate::error::ErrorCode
//! [`is_backpressure`]: crate::error::ErrorCode::is_backpressure
//! [`ErrorCode::TenantExists`]: crate::error::ErrorCode::TenantExists
//! [`ErrorCode::DeadlineExceeded`]: crate::error::ErrorCode::DeadlineExceeded

use crate::error::WireError;
use crate::wire::{self, Frame, Op, Request, DEFAULT_MAX_FRAME};

use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Default socket read/write timeout applied by [`Client::connect`].
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Failures issuing a request.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read, write, timeout, or
    /// mid-frame EOF).
    Io(io::Error),
    /// The server answered with a typed wire error.
    Wire(WireError),
    /// The server answered with something structurally unexpected
    /// (mismatched request id, undecodable response, bad payload shape).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Wire(e) => write!(f, "server: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Wire(e) => Some(e),
            ClientError::Protocol(_) => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// The result of a remote key generation.
#[derive(Clone, Debug)]
pub struct KeygenReply {
    /// Canonical name of the parameter set the key was generated under.
    pub params: String,
    /// Hash algorithm label.
    pub alg: String,
    /// Serialized public key (`pk_seed || pk_root`).
    pub public_key: Vec<u8>,
}

/// Per-item verdict from [`Client::verify_batch`] (the on-wire verdict
/// byte, decoded).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerifyVerdict {
    /// The signature verified under the tenant's key.
    Valid,
    /// Structurally fine but cryptographically invalid.
    Invalid,
    /// Structurally malformed (wrong lengths/shape for the tenant's
    /// parameter set) — never reached the verifier.
    Malformed,
}

impl VerifyVerdict {
    /// Decodes an on-wire verdict byte (`1` valid, `0` invalid, `2`
    /// malformed).
    pub const fn from_wire(byte: u8) -> Option<Self> {
        Some(match byte {
            1 => VerifyVerdict::Valid,
            0 => VerifyVerdict::Invalid,
            2 => VerifyVerdict::Malformed,
            _ => return None,
        })
    }

    /// Whether the signature verified.
    pub const fn is_valid(self) -> bool {
        matches!(self, VerifyVerdict::Valid)
    }
}

/// Opt-in retry policy for transport failures and backpressure
/// rejections (see the module docs for the safety argument).
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts including the first (`1` disables retrying).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles on each subsequent one.
    pub base_backoff: Duration,
    /// Ceiling for the exponential backoff (jitter is applied below it).
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (0-based), with a
    /// deterministic jitter of up to half the exponential step mixed in
    /// from `jitter_state` so synchronized clients do not stampede.
    fn backoff(&self, retry: u32, jitter_state: &mut u64) -> Duration {
        let step = self
            .base_backoff
            .saturating_mul(1u32 << retry.min(16))
            .min(self.max_backoff);
        // Deterministic LCG (MMIX constants): reproducible under test,
        // decorrelated across clients seeded differently.
        *jitter_state = jitter_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let frac = (*jitter_state >> 33) as f64 / (1u64 << 31) as f64; // [0, 1)
        step + step.mul_f64(frac * 0.5)
    }
}

/// A blocking connection to a hero-server.
pub struct Client {
    stream: TcpStream,
    /// Resolved peer, kept so retry can reconnect after transport loss.
    addr: SocketAddr,
    next_id: u64,
    max_frame: u32,
    io_timeout: Option<Duration>,
    retry: Option<RetryPolicy>,
    jitter_state: u64,
    reconnects: u64,
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("peer", &self.addr)
            .field("next_id", &self.next_id)
            .field("io_timeout", &self.io_timeout)
            .field("retry", &self.retry)
            .field("reconnects", &self.reconnects)
            .finish()
    }
}

impl Client {
    /// Connects to a server with the default 5-second socket timeout
    /// and no retry policy.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "address resolved to nothing")
        })?;
        let stream = Self::open(addr, Some(DEFAULT_IO_TIMEOUT))?;
        Ok(Self {
            stream,
            addr,
            next_id: 1,
            max_frame: DEFAULT_MAX_FRAME,
            io_timeout: Some(DEFAULT_IO_TIMEOUT),
            retry: None,
            jitter_state: 0x9e3779b97f4a7c15,
            reconnects: 0,
        })
    }

    fn open(addr: SocketAddr, timeout: Option<Duration>) -> io::Result<TcpStream> {
        let stream = match timeout {
            Some(t) => TcpStream::connect_timeout(&addr, t)?,
            None => TcpStream::connect(addr)?,
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        Ok(stream)
    }

    /// Caps how large a *response* frame this client will accept
    /// (defaults to [`DEFAULT_MAX_FRAME`]).
    pub fn set_max_frame(&mut self, max_frame: u32) {
        self.max_frame = max_frame;
    }

    /// Overrides the socket read/write timeout (`None` blocks forever).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the socket rejects the option.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)?;
        self.io_timeout = timeout;
        Ok(())
    }

    /// Enables (or with `None`, disables) retry-with-reconnect for
    /// transport failures and backpressure rejections. Keygen and
    /// deadline-expired requests are never retried; see the module
    /// docs.
    pub fn set_retry(&mut self, policy: Option<RetryPolicy>) {
        self.retry = policy;
    }

    /// Seeds the retry jitter stream (tests pin this for reproducible
    /// backoff schedules; load generators seed it per-stream).
    pub fn set_jitter_seed(&mut self, seed: u64) {
        self.jitter_state = seed | 1;
    }

    /// How many times this client has re-established its connection
    /// while retrying.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Drops the current connection and dials the same address again.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        self.stream = Self::open(self.addr, self.io_timeout)?;
        self.reconnects += 1;
        Ok(())
    }

    /// One request/response round trip on the current connection.
    fn call_once(
        &mut self,
        tenant: &str,
        op: Op,
        payload: Vec<u8>,
        deadline_ms: Option<u32>,
    ) -> Result<Vec<u8>, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let req = Request {
            id,
            tenant: tenant.to_string(),
            op,
            deadline_ms,
            payload,
        };
        wire::write_frame(&mut self.stream, &wire::encode_request(&req))?;
        let body = match wire::read_frame(&mut self.stream, self.max_frame)? {
            Frame::Body(body) => body,
            Frame::Eof => {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection before answering",
                )))
            }
            Frame::Oversized { declared, .. } => {
                return Err(ClientError::Protocol(format!(
                    "response frame of {declared} bytes exceeds client max_frame {}",
                    self.max_frame
                )))
            }
        };
        let resp = wire::decode_response(&body)
            .map_err(|e| ClientError::Protocol(format!("undecodable response: {e}")))?;
        if resp.id != id {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {id}",
                resp.id
            )));
        }
        resp.result.map_err(ClientError::Wire)
    }

    /// Round trip with the configured retry policy applied (if any).
    fn call(
        &mut self,
        tenant: &str,
        op: Op,
        payload: Vec<u8>,
        deadline_ms: Option<u32>,
    ) -> Result<Vec<u8>, ClientError> {
        let Some(policy) = self.retry.clone() else {
            return self.call_once(tenant, op, payload, deadline_ms);
        };
        if op == Op::Keygen {
            // Never replayed: an ambiguous failure followed by a replay
            // reports TenantExists and hides whether keygen happened.
            return self.call_once(tenant, op, payload, deadline_ms);
        }
        let mut retry = 0u32;
        loop {
            let reconnect_first = match self.call_once(tenant, op, payload.clone(), deadline_ms) {
                Ok(body) => return Ok(body),
                Err(e) if retry + 1 >= policy.max_attempts.max(1) => return Err(e),
                Err(ClientError::Io(_)) => true,
                Err(ClientError::Wire(ref e)) if e.code.is_backpressure() => false,
                Err(e) => return Err(e),
            };
            std::thread::sleep(policy.backoff(retry, &mut self.jitter_state));
            retry += 1;
            if reconnect_first {
                // Best effort: if the dial fails, the next call_once
                // reports the transport error and the loop decides
                // whether budget remains.
                let _ = self.reconnect();
            }
        }
    }

    /// Signs one message under `tenant`'s key; returns the signature
    /// bytes.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] carries the server's typed rejection
    /// (unknown tenant, queue full, tenant busy, …).
    pub fn sign(&mut self, tenant: &str, msg: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.call(tenant, Op::Sign, msg.to_vec(), None)
    }

    /// Signs one message with a relative deadline: the server sheds the
    /// request with [`ErrorCode::DeadlineExceeded`] instead of signing
    /// if `deadline_ms` elapses (measured from frame receipt) before a
    /// batch picks it up.
    ///
    /// # Errors
    ///
    /// As [`Client::sign`], plus the typed deadline rejection.
    ///
    /// [`ErrorCode::DeadlineExceeded`]: crate::error::ErrorCode::DeadlineExceeded
    pub fn sign_with_deadline(
        &mut self,
        tenant: &str,
        msg: &[u8],
        deadline_ms: u32,
    ) -> Result<Vec<u8>, ClientError> {
        self.call(tenant, Op::Sign, msg.to_vec(), Some(deadline_ms))
    }

    /// Signs a batch of messages in one request; returns one signature
    /// per message, in order.
    ///
    /// # Errors
    ///
    /// As [`Client::sign`]; the whole batch shares one admission slot
    /// and fails as a unit.
    pub fn sign_batch(
        &mut self,
        tenant: &str,
        msgs: &[&[u8]],
    ) -> Result<Vec<Vec<u8>>, ClientError> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&(msgs.len() as u32).to_be_bytes());
        for msg in msgs {
            wire::put_bytes(&mut payload, msg);
        }
        let body = self.call(tenant, Op::SignBatch, payload, None)?;
        let mut at = 0;
        let count = wire::take_u32(&body, &mut at)
            .map_err(|e| ClientError::Protocol(e.to_string()))? as usize;
        if count != msgs.len() {
            return Err(ClientError::Protocol(format!(
                "batch reply has {count} signatures for {} messages",
                msgs.len()
            )));
        }
        let mut sigs = Vec::with_capacity(count);
        for _ in 0..count {
            sigs.push(
                wire::take_bytes(&body, &mut at)
                    .map_err(|e| ClientError::Protocol(e.to_string()))?,
            );
        }
        Ok(sigs)
    }

    /// Verifies a signature under `tenant`'s public key.
    ///
    /// Returns `Ok(true)` on a valid signature, `Ok(false)` when the
    /// server rejects it as cryptographically invalid, and an error for
    /// anything else (unknown tenant, malformed bytes, transport).
    ///
    /// # Errors
    ///
    /// As [`Client::sign`] for non-verification failures.
    pub fn verify(&mut self, tenant: &str, msg: &[u8], sig: &[u8]) -> Result<bool, ClientError> {
        self.verify_inner(tenant, msg, sig, None)
    }

    /// [`Client::verify`] with a relative deadline: the server sheds the
    /// request with [`ErrorCode::DeadlineExceeded`] instead of verifying
    /// if `deadline_ms` elapses (measured from frame receipt) before the
    /// verify lane picks it up.
    ///
    /// # Errors
    ///
    /// As [`Client::verify`], plus the typed deadline rejection.
    ///
    /// [`ErrorCode::DeadlineExceeded`]: crate::error::ErrorCode::DeadlineExceeded
    pub fn verify_with_deadline(
        &mut self,
        tenant: &str,
        msg: &[u8],
        sig: &[u8],
        deadline_ms: u32,
    ) -> Result<bool, ClientError> {
        self.verify_inner(tenant, msg, sig, Some(deadline_ms))
    }

    fn verify_inner(
        &mut self,
        tenant: &str,
        msg: &[u8],
        sig: &[u8],
        deadline_ms: Option<u32>,
    ) -> Result<bool, ClientError> {
        let mut payload = Vec::new();
        wire::put_bytes(&mut payload, msg);
        wire::put_bytes(&mut payload, sig);
        match self.call(tenant, Op::Verify, payload, deadline_ms) {
            Ok(_) => Ok(true),
            Err(ClientError::Wire(e)) if e.code == crate::error::ErrorCode::VerificationFailed => {
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    /// Verifies a batch of `(message, signature)` pairs in one request;
    /// returns one [`VerifyVerdict`] per item, in order. A mixed batch
    /// is a *success* naming exactly which items failed — only
    /// tenancy/admission/framing failures are errors.
    ///
    /// # Errors
    ///
    /// As [`Client::sign`]; the whole batch shares one admission slot
    /// and fails as a unit.
    pub fn verify_batch(
        &mut self,
        tenant: &str,
        items: &[(&[u8], &[u8])],
    ) -> Result<Vec<VerifyVerdict>, ClientError> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&(items.len() as u32).to_be_bytes());
        for (msg, sig) in items {
            wire::put_bytes(&mut payload, msg);
            wire::put_bytes(&mut payload, sig);
        }
        let body = self.call(tenant, Op::VerifyBatch, payload, None)?;
        let mut at = 0;
        let count = wire::take_u32(&body, &mut at)
            .map_err(|e| ClientError::Protocol(e.to_string()))? as usize;
        if count != items.len() {
            return Err(ClientError::Protocol(format!(
                "verify-batch reply has {count} verdicts for {} items",
                items.len()
            )));
        }
        let bytes = body.get(at..at + count).ok_or_else(|| {
            ClientError::Protocol("verify-batch reply shorter than its count".to_string())
        })?;
        bytes
            .iter()
            .map(|&b| {
                VerifyVerdict::from_wire(b)
                    .ok_or_else(|| ClientError::Protocol(format!("unknown verdict byte {b}")))
            })
            .collect()
    }

    /// Generates (and registers) a key pair for a new tenant on the
    /// server. `alg = None` uses the parameter set's preferred hash;
    /// `seed = Some(_)` makes generation deterministic (tests only).
    ///
    /// Keygen is exempt from the retry policy (see the module docs).
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] with [`ErrorCode::TenantExists`] when the
    /// tenant already holds a key, or `BadRequest` for bad labels/names.
    ///
    /// [`ErrorCode::TenantExists`]: crate::error::ErrorCode::TenantExists
    pub fn keygen(
        &mut self,
        tenant: &str,
        params_label: &str,
        alg: Option<&str>,
        seed: Option<u64>,
    ) -> Result<KeygenReply, ClientError> {
        let mut payload = Vec::new();
        wire::put_str(&mut payload, params_label);
        wire::put_str(&mut payload, alg.unwrap_or(""));
        match seed {
            Some(s) => {
                payload.push(1);
                payload.extend_from_slice(&s.to_be_bytes());
            }
            None => payload.push(0),
        }
        let body = self.call(tenant, Op::Keygen, payload, None)?;
        let mut at = 0;
        let params =
            wire::take_str(&body, &mut at).map_err(|e| ClientError::Protocol(e.to_string()))?;
        let alg =
            wire::take_str(&body, &mut at).map_err(|e| ClientError::Protocol(e.to_string()))?;
        let public_key =
            wire::take_bytes(&body, &mut at).map_err(|e| ClientError::Protocol(e.to_string()))?;
        Ok(KeygenReply {
            params,
            alg,
            public_key,
        })
    }

    /// Fetches the server's plaintext metrics page in-protocol.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`]/[`ClientError::Protocol`] on transport or
    /// framing failures.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let body = self.call("", Op::Stats, Vec::new(), None)?;
        String::from_utf8(body)
            .map_err(|_| ClientError::Protocol("stats page is not UTF-8".to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
        };
        let mut state_a = 7u64;
        let mut state_b = 7u64;
        let a: Vec<Duration> = (0..6).map(|r| policy.backoff(r, &mut state_a)).collect();
        let b: Vec<Duration> = (0..6).map(|r| policy.backoff(r, &mut state_b)).collect();
        assert_eq!(a, b, "same seed must give the same schedule");
        for (r, d) in a.iter().enumerate() {
            let step = Duration::from_millis(10)
                .saturating_mul(1 << r)
                .min(Duration::from_millis(200));
            assert!(
                *d >= step,
                "retry {r}: {d:?} below exponential floor {step:?}"
            );
            assert!(
                *d <= step + step.mul_f64(0.5),
                "retry {r}: {d:?} above jitter ceiling"
            );
        }
        // The cap binds: retries 5+ share the same exponential floor.
        assert!(a[5] <= Duration::from_millis(300));
    }

    #[test]
    fn jitter_streams_decorrelate_across_seeds() {
        let policy = RetryPolicy::default();
        let mut s1 = 1u64;
        let mut s2 = 2u64;
        let d1: Vec<Duration> = (0..4).map(|r| policy.backoff(r, &mut s1)).collect();
        let d2: Vec<Duration> = (0..4).map(|r| policy.backoff(r, &mut s2)).collect();
        assert_ne!(d1, d2, "different seeds should jitter differently");
    }
}
