//! A blocking client for the hero-server wire protocol.
//!
//! One [`Client`] wraps one TCP connection and issues requests
//! synchronously (write frame, read frame). The server pipelines across
//! *connections*, not within one, so closed-loop load generators open
//! one client per concurrent stream — exactly what `bench_server` and
//! the CLI `remote-sign` command do.

use crate::error::WireError;
use crate::wire::{self, Frame, Op, Request, DEFAULT_MAX_FRAME};

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Failures issuing a request.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read, write, or mid-frame EOF).
    Io(io::Error),
    /// The server answered with a typed wire error.
    Wire(WireError),
    /// The server answered with something structurally unexpected
    /// (mismatched request id, undecodable response, bad payload shape).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Wire(e) => write!(f, "server: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Wire(e) => Some(e),
            ClientError::Protocol(_) => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// The result of a remote key generation.
#[derive(Clone, Debug)]
pub struct KeygenReply {
    /// Canonical name of the parameter set the key was generated under.
    pub params: String,
    /// Hash algorithm label.
    pub alg: String,
    /// Serialized public key (`pk_seed || pk_root`).
    pub public_key: Vec<u8>,
}

/// A blocking connection to a hero-server.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    max_frame: u32,
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("peer", &self.stream.peer_addr().ok())
            .field("next_id", &self.next_id)
            .finish()
    }
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            next_id: 1,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Caps how large a *response* frame this client will accept
    /// (defaults to [`DEFAULT_MAX_FRAME`]).
    pub fn set_max_frame(&mut self, max_frame: u32) {
        self.max_frame = max_frame;
    }

    /// One request/response round trip.
    fn call(&mut self, tenant: &str, op: Op, payload: Vec<u8>) -> Result<Vec<u8>, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let req = Request {
            id,
            tenant: tenant.to_string(),
            op,
            payload,
        };
        wire::write_frame(&mut self.stream, &wire::encode_request(&req))?;
        let body = match wire::read_frame(&mut self.stream, self.max_frame)? {
            Frame::Body(body) => body,
            Frame::Eof => {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection before answering",
                )))
            }
            Frame::Oversized { declared, .. } => {
                return Err(ClientError::Protocol(format!(
                    "response frame of {declared} bytes exceeds client max_frame {}",
                    self.max_frame
                )))
            }
        };
        let resp = wire::decode_response(&body)
            .map_err(|e| ClientError::Protocol(format!("undecodable response: {e}")))?;
        if resp.id != id {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {id}",
                resp.id
            )));
        }
        resp.result.map_err(ClientError::Wire)
    }

    /// Signs one message under `tenant`'s key; returns the signature
    /// bytes.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] carries the server's typed rejection
    /// (unknown tenant, queue full, tenant busy, …).
    pub fn sign(&mut self, tenant: &str, msg: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.call(tenant, Op::Sign, msg.to_vec())
    }

    /// Signs a batch of messages in one request; returns one signature
    /// per message, in order.
    ///
    /// # Errors
    ///
    /// As [`Client::sign`]; the whole batch shares one admission slot
    /// and fails as a unit.
    pub fn sign_batch(
        &mut self,
        tenant: &str,
        msgs: &[&[u8]],
    ) -> Result<Vec<Vec<u8>>, ClientError> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&(msgs.len() as u32).to_be_bytes());
        for msg in msgs {
            wire::put_bytes(&mut payload, msg);
        }
        let body = self.call(tenant, Op::SignBatch, payload)?;
        let mut at = 0;
        let count = wire::take_u32(&body, &mut at)
            .map_err(|e| ClientError::Protocol(e.to_string()))? as usize;
        if count != msgs.len() {
            return Err(ClientError::Protocol(format!(
                "batch reply has {count} signatures for {} messages",
                msgs.len()
            )));
        }
        let mut sigs = Vec::with_capacity(count);
        for _ in 0..count {
            sigs.push(
                wire::take_bytes(&body, &mut at)
                    .map_err(|e| ClientError::Protocol(e.to_string()))?,
            );
        }
        Ok(sigs)
    }

    /// Verifies a signature under `tenant`'s public key.
    ///
    /// Returns `Ok(true)` on a valid signature, `Ok(false)` when the
    /// server rejects it as cryptographically invalid, and an error for
    /// anything else (unknown tenant, malformed bytes, transport).
    ///
    /// # Errors
    ///
    /// As [`Client::sign`] for non-verification failures.
    pub fn verify(&mut self, tenant: &str, msg: &[u8], sig: &[u8]) -> Result<bool, ClientError> {
        let mut payload = Vec::new();
        wire::put_bytes(&mut payload, msg);
        wire::put_bytes(&mut payload, sig);
        match self.call(tenant, Op::Verify, payload) {
            Ok(_) => Ok(true),
            Err(ClientError::Wire(e)) if e.code == crate::error::ErrorCode::VerificationFailed => {
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    /// Generates (and registers) a key pair for a new tenant on the
    /// server. `alg = None` uses the parameter set's preferred hash;
    /// `seed = Some(_)` makes generation deterministic (tests only).
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] with [`ErrorCode::TenantExists`] when the
    /// tenant already holds a key, or `BadRequest` for bad labels/names.
    ///
    /// [`ErrorCode::TenantExists`]: crate::error::ErrorCode::TenantExists
    pub fn keygen(
        &mut self,
        tenant: &str,
        params_label: &str,
        alg: Option<&str>,
        seed: Option<u64>,
    ) -> Result<KeygenReply, ClientError> {
        let mut payload = Vec::new();
        wire::put_str(&mut payload, params_label);
        wire::put_str(&mut payload, alg.unwrap_or(""));
        match seed {
            Some(s) => {
                payload.push(1);
                payload.extend_from_slice(&s.to_be_bytes());
            }
            None => payload.push(0),
        }
        let body = self.call(tenant, Op::Keygen, payload)?;
        let mut at = 0;
        let params =
            wire::take_str(&body, &mut at).map_err(|e| ClientError::Protocol(e.to_string()))?;
        let alg =
            wire::take_str(&body, &mut at).map_err(|e| ClientError::Protocol(e.to_string()))?;
        let public_key =
            wire::take_bytes(&body, &mut at).map_err(|e| ClientError::Protocol(e.to_string()))?;
        Ok(KeygenReply {
            params,
            alg,
            public_key,
        })
    }

    /// Fetches the server's plaintext metrics page in-protocol.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`]/[`ClientError::Protocol`] on transport or
    /// framing failures.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let body = self.call("", Op::Stats, Vec::new())?;
        String::from_utf8(body)
            .map_err(|_| ClientError::Protocol("stats page is not UTF-8".to_string()))
    }
}
