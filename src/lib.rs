//! Umbrella crate for the HERO-Sign reproduction workspace.
//!
//! Re-exports the member crates under one roof so the repository-level
//! examples and integration tests (and downstream experiments) can
//! depend on a single package. See the individual crates for the real
//! content:
//!
//! * [`hero_sphincs`] — the functional SPHINCS+ substrate.
//! * [`hero_gpu_sim`] — the analytical GPU execution model.
//! * [`hero_task_graph`] — CUDA-Graph-style batch execution.
//! * [`hero_sign`] — the HERO-Sign engine, tuning search and `Signer`
//!   backends.

#![warn(missing_docs)]

pub use hero_gpu_sim;
pub use hero_sign;
pub use hero_sphincs;
pub use hero_task_graph;
